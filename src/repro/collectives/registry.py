"""Name-based factory for All-reduce schedules.

The experiment runner, CLI and training substrate all select algorithms by
the short names used throughout the paper's figures: ``ring``, ``hring``,
``bt``, ``dbtree``, ``rd``, ``wrht`` — plus the rival collectives ``swing``
(distance-doubling ring short-cuts) and ``scring`` (short-circuiting ring).

Name resolution is an explicit alias table: every canonical key plus its
display name (and nothing else) resolves, case-insensitively. The old
``name.lower().replace("-", "")`` normalization silently accepted garbage
spellings like ``"w-r-h-t"``; an unknown name now raises ``ValueError``
listing every accepted spelling.
"""

from __future__ import annotations

from typing import Callable

from repro.collectives.base import Schedule
from repro.collectives.btree import build_bt_schedule
from repro.collectives.dbtree import build_dbtree_schedule
from repro.collectives.hring import build_hring_schedule
from repro.collectives.rd import build_rd_schedule
from repro.collectives.ring import build_ring_schedule
from repro.collectives.scring import build_scring_schedule
from repro.collectives.swing import build_swing_schedule
from repro.collectives.wrht_schedule import build_wrht_schedule

_BUILDERS: dict[str, Callable[..., Schedule]] = {
    "ring": build_ring_schedule,
    "hring": build_hring_schedule,
    "bt": build_bt_schedule,
    "dbtree": build_dbtree_schedule,
    "rd": build_rd_schedule,
    "wrht": build_wrht_schedule,
    "swing": build_swing_schedule,
    "scring": build_scring_schedule,
}

# Pretty names as used in the paper's figures.
DISPLAY_NAMES = {
    "ring": "Ring",
    "hring": "H-Ring",
    "bt": "BT",
    "dbtree": "DBTree",
    "rd": "RD",
    "wrht": "WRHT",
    "swing": "Swing",
    "scring": "SCRing",
}

assert set(DISPLAY_NAMES) == set(_BUILDERS), (
    "DISPLAY_NAMES and _BUILDERS must register the same algorithm keys: "
    f"{sorted(set(DISPLAY_NAMES) ^ set(_BUILDERS))} differ"
)

#: Explicit spelling → canonical key table (lower-cased lookup): each
#: canonical key plus its figure display name, and nothing else.
_ALIASES: dict[str, str] = {
    **{key: key for key in _BUILDERS},
    **{display.lower(): key for key, display in DISPLAY_NAMES.items()},
}


def available_algorithms() -> list[str]:
    """Registered algorithm names, sorted."""
    return sorted(_BUILDERS)


def accepted_spellings() -> list[str]:
    """Every spelling :func:`build_schedule` resolves (canonical + display)."""
    return sorted(set(_ALIASES) | {DISPLAY_NAMES[k] for k in _BUILDERS})


def build_schedule(name: str, n_nodes: int, total_elems: int, **kwargs) -> Schedule:
    """Build a schedule by algorithm name.

    Args:
        name: One of :func:`available_algorithms` (case-insensitive; the
            display names "Ring"/"H-Ring"/... are accepted too).
        n_nodes: Participants.
        total_elems: Gradient vector length.
        **kwargs: Forwarded to the specific builder (``m``,
            ``n_wavelengths``, ``materialize``, ``pipeline``, ...).

    Raises:
        ValueError: ``name`` is not an accepted spelling.
    """
    key = _ALIASES.get(name.lower() if isinstance(name, str) else name)
    if key is None:
        raise ValueError(
            f"unknown algorithm {name!r}; accepted spellings: "
            f"{accepted_spellings()}"
        )
    return _BUILDERS[key](n_nodes, total_elems, **kwargs)
