"""One-step all-to-all exchange among a set of ring nodes.

WRHT's final reduce step (when the wavelength budget allows) is a single
all-to-all among the ``m*`` surviving representatives: every representative
sends its partial sum to every other and accumulates what it receives. The
partials cover disjoint original-node sets, so afterwards *all*
representatives hold the global sum — which is what lets the broadcast stage
skip one level (θ = 2L − 1).

The ``⌈k²/8⌉`` wavelength requirement for this step on a ring comes from the
one-stage model of Liang & Shen [13]; the optical substrate validates it
constructively by actually assigning wavelengths to these transfers.
"""

from __future__ import annotations

from typing import Sequence

from repro.collectives.base import CommStep, Transfer


def build_alltoall_step(
    nodes: Sequence[int], total_elems: int, stage: str = "exchange", level: int = 0
) -> CommStep:
    """Full-vector all-to-all among ``nodes`` as one bulk-synchronous step.

    Args:
        nodes: Participating node ids (at least 2, all distinct).
        total_elems: Gradient vector length.
        stage: Stage label for reporting.
        level: Hierarchy level for reporting.

    Returns:
        A :class:`CommStep` with ``k(k−1)`` concurrent ``sum`` transfers.
    """
    nodes = list(nodes)
    if len(nodes) < 2:
        raise ValueError(f"all-to-all needs >= 2 nodes, got {len(nodes)}")
    if len(set(nodes)) != len(nodes):
        raise ValueError("all-to-all nodes must be distinct")
    transfers = tuple(
        Transfer(src=a, dst=b, lo=0, hi=total_elems, op="sum")
        for a in nodes
        for b in nodes
        if a != b
    )
    return CommStep(transfers, stage=stage, level=level)
