"""All-reduce algorithms as executable communication schedules.

A *schedule* is the topology-independent description of an All-reduce: a
sequence of bulk-synchronous :class:`~repro.collectives.base.CommStep`\\ s,
each holding concurrent :class:`~repro.collectives.base.Transfer`\\ s over
element ranges of the gradient vector. The same schedule object is

- executed numerically by :mod:`~repro.collectives.verify` to prove the
  algorithm computes the exact sum on every node,
- timed on the optical ring by :mod:`repro.optical.network`, and
- timed on the electrical fat-tree by :mod:`repro.electrical.network`.

Builders: Ring (reduce-scatter + all-gather), H-Ring (hierarchical ring),
BT (binomial/binary tree), RD (recursive doubling with non-power-of-two
fix-up) and WRHT (from a :class:`~repro.core.planner.WrhtPlan`).
"""

from repro.collectives.base import CommStep, Schedule, Transfer
from repro.collectives.ring import build_ring_schedule
from repro.collectives.hring import build_hring_schedule
from repro.collectives.btree import build_bt_schedule
from repro.collectives.rd import build_rd_schedule
from repro.collectives.scring import build_scring_schedule
from repro.collectives.swing import build_swing_schedule
from repro.collectives.wrht_schedule import build_wrht_schedule
from repro.collectives.alltoall import build_alltoall_step
from repro.collectives.dbtree import build_dbtree_schedule
from repro.collectives.grouped import (
    build_grouped_allreduce,
    remap_schedule,
    verify_grouped_allreduce,
)
from repro.collectives.degraded import (
    build_shrunk_schedule,
    build_shrunk_wrht_schedule,
    shrunk_representatives,
)
from repro.collectives.render import render_schedule, render_step
from repro.collectives.serialize import dump_schedule, load_schedule
from repro.collectives.verify import run_schedule, verify_allreduce
from repro.collectives.registry import available_algorithms, build_schedule

__all__ = [
    "CommStep",
    "Schedule",
    "Transfer",
    "available_algorithms",
    "build_alltoall_step",
    "build_bt_schedule",
    "build_dbtree_schedule",
    "build_grouped_allreduce",
    "build_hring_schedule",
    "build_rd_schedule",
    "build_ring_schedule",
    "build_schedule",
    "build_scring_schedule",
    "build_shrunk_schedule",
    "build_shrunk_wrht_schedule",
    "build_swing_schedule",
    "build_wrht_schedule",
    "dump_schedule",
    "load_schedule",
    "remap_schedule",
    "render_schedule",
    "render_step",
    "run_schedule",
    "shrunk_representatives",
    "verify_allreduce",
    "verify_grouped_allreduce",
]
