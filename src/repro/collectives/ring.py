"""Ring All-reduce: reduce-scatter followed by all-gather, ``2(N−1)`` steps.

The classic bandwidth-optimal construction (Baidu/Horovod style): the vector
is split into N chunks; in reduce-scatter step ``s`` node ``i`` sends chunk
``(i − s) mod N`` to node ``(i + 1) mod N`` which accumulates it, so after
``N−1`` steps node ``i`` owns the fully reduced chunk ``(i + 1) mod N``.
All-gather then circulates the reduced chunks with ``copy`` transfers for
another ``N−1`` steps. Every step moves ``d/N`` per node — the paper's
motivating contrast with WRHT's constant-``d`` steps.

Timing profile note: with ``total_elems`` not divisible by N, the exact
balanced chunks differ by one element between nodes, which would make every
step a distinct pattern. The profile instead uses a uniform chunk of
``⌈total/N⌉`` elements (marked ``meta["profile_exact"] = False``); the
timing error is below one element per transfer.
"""

from __future__ import annotations

import math

from repro.collectives.base import (
    CommStep,
    Schedule,
    Transfer,
    singleton_schedule,
)
from repro.util.validation import check_positive_int

# Auto-materialization cutoff: above this node count the exact steps are not
# built unless explicitly requested (they are only needed for verification).
MATERIALIZE_DEFAULT_LIMIT = 128


def chunk_bounds(total_elems: int, n_chunks: int) -> list[tuple[int, int]]:
    """Balanced split of ``[0, total)`` into ``n_chunks`` contiguous ranges.

    The first ``total % n_chunks`` chunks get one extra element; empty
    chunks are produced when ``total < n_chunks`` (legal — they model nodes
    that own no slice this round).
    """
    check_positive_int("n_chunks", n_chunks)
    if total_elems < 0:
        raise ValueError(f"total_elems must be >= 0, got {total_elems!r}")
    base, extra = divmod(total_elems, n_chunks)
    bounds = []
    lo = 0
    for c in range(n_chunks):
        hi = lo + base + (1 if c < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _materialize(n: int, total: int) -> list[CommStep]:
    bounds = chunk_bounds(total, n)
    steps: list[CommStep] = []
    for s in range(n - 1):  # reduce-scatter
        transfers = []
        for i in range(n):
            lo, hi = bounds[(i - s) % n]
            transfers.append(Transfer(src=i, dst=(i + 1) % n, lo=lo, hi=hi, op="sum"))
        steps.append(CommStep(tuple(transfers), stage="reduce"))
    for s in range(n - 1):  # all-gather
        transfers = []
        for i in range(n):
            lo, hi = bounds[(i + 1 - s) % n]
            transfers.append(Transfer(src=i, dst=(i + 1) % n, lo=lo, hi=hi, op="copy"))
        steps.append(CommStep(tuple(transfers), stage="broadcast"))
    return steps


def _profile(n: int, total: int) -> list[tuple[CommStep, int]]:
    chunk = math.ceil(total / n)
    chunk = min(chunk, total)
    rs = CommStep(
        tuple(Transfer(i, (i + 1) % n, 0, chunk, "sum") for i in range(n)),
        stage="reduce",
    )
    ag = CommStep(
        tuple(Transfer(i, (i + 1) % n, 0, chunk, "copy") for i in range(n)),
        stage="broadcast",
    )
    return [(rs, n - 1), (ag, n - 1)]


def build_ring_schedule(
    n_nodes: int, total_elems: int, materialize: bool | None = None
) -> Schedule:
    """Build the Ring All-reduce schedule.

    Args:
        n_nodes: Participants N >= 1.
        total_elems: Gradient vector length.
        materialize: Force (True) or skip (False) exact step construction;
            ``None`` materializes for N <= 128.

    Returns:
        A :class:`Schedule` with ``2(N−1)`` steps.
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("total_elems", total_elems)
    if n_nodes == 1:
        return singleton_schedule("ring", total_elems)
    if materialize is None:
        materialize = n_nodes <= MATERIALIZE_DEFAULT_LIMIT
    steps = _materialize(n_nodes, total_elems) if materialize else None
    return Schedule(
        algorithm="ring",
        n_nodes=n_nodes,
        total_elems=total_elems,
        steps=steps,
        timing_profile=_profile(n_nodes, total_elems),
        meta={"profile_exact": total_elems % n_nodes == 0},
    )
