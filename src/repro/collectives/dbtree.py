"""Double binary tree (DBTree) All-reduce — the NCCL algorithm of [25].

The paper's related work cites Sanders/Speck/Träff's two-tree construction
as implemented in NCCL: run *two* binary-tree All-reduces concurrently,
each over half the gradient, with the node roles permuted between the
trees so no node is an interior (bandwidth-heavy) vertex in both. Step
count stays BT's ``2⌈log₂N⌉``, but each step's per-link payload halves —
DBTree repairs exactly the full-``d``-per-step weakness that makes BT the
worst baseline on the paper's large models, while still paying
logarithmically many reconfigurations.

Construction used here: tree A is the binomial tree over ranks as in
:mod:`repro.collectives.btree`, operating on the lower half of the vector;
tree B applies the rank rotation ``σ(i) = (i + ⌈N/2⌉) mod N`` to the same
structure and operates on the upper half. σ maps A's root (rank 0) to a
mid-ring rank, so A-interior nodes become B-leaves and the send load per
node per step is at most one transfer per tree, each of ``d/2``.
"""

from __future__ import annotations

from repro.collectives.base import (
    CommStep,
    Schedule,
    Transfer,
    compress_steps,
    singleton_schedule,
)
from repro.util.validation import check_positive_int


def _tree_steps(n: int, lo: int, hi: int, rotate: int) -> list[list[Transfer]]:
    """Binomial reduce+broadcast transfers over ``[lo, hi)`` with rank ids
    rotated by ``rotate``."""
    if n < 2:
        raise ValueError(f"a binomial tree needs n >= 2 ranks, got {n!r}")
    n_levels = (n - 1).bit_length()  # exact ⌈log₂ n⌉, no float rounding
    steps: list[list[Transfer]] = []
    for k in range(1, n_levels + 1):
        half = 1 << (k - 1)
        steps.append(
            [
                Transfer(
                    src=(j + rotate) % n, dst=(j - half + rotate) % n,
                    lo=lo, hi=hi, op="sum",
                )
                for j in range(half, n, 1 << k)
            ]
        )
    for k in range(n_levels, 0, -1):
        half = 1 << (k - 1)
        steps.append(
            [
                Transfer(
                    src=(j - half + rotate) % n, dst=(j + rotate) % n,
                    lo=lo, hi=hi, op="copy",
                )
                for j in range(half, n, 1 << k)
            ]
        )
    return steps


def build_dbtree_schedule(
    n_nodes: int, total_elems: int, materialize: bool | None = None
) -> Schedule:
    """Build the double-binary-tree All-reduce schedule.

    Args:
        n_nodes: Participants N >= 1.
        total_elems: Gradient vector length (halved across the two trees).
        materialize: API symmetry; always cheap, built unless disabled.

    Returns:
        A :class:`Schedule` with ``2⌈log₂N⌉`` steps, every step carrying
        both trees' transfers on disjoint vector halves.
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("total_elems", total_elems)
    if n_nodes == 1:
        return singleton_schedule("dbtree", total_elems)
    mid = total_elems // 2
    rotate = (n_nodes + 1) // 2
    tree_a = _tree_steps(n_nodes, 0, mid, rotate=0)
    tree_b = _tree_steps(n_nodes, mid, total_elems, rotate=rotate)
    steps = []
    n_levels = (n_nodes - 1).bit_length()
    for idx, (a, b) in enumerate(zip(tree_a, tree_b)):
        stage = "reduce" if idx < n_levels else "broadcast"
        transfers = tuple(
            t for t in (*a, *b) if t.n_elems > 0
        )
        steps.append(
            CommStep(
                transfers,
                stage=stage,
                level=(idx + 1) if idx < n_levels else (2 * n_levels - idx),
            )
        )
    return Schedule(
        algorithm="dbtree",
        n_nodes=n_nodes,
        total_elems=total_elems,
        steps=steps if materialize is not False else None,
        timing_profile=compress_steps(steps),
        meta={"profile_exact": True, "rotation": rotate, "n_levels": n_levels},
    )
