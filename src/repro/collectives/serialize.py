"""Schedule serialization: JSON round-trips for caching and sharing.

Building a schedule is cheap; *planning* around one (RWA validation at
scale, external tooling, regression fixtures) benefits from a stable
on-disk form. The format is deliberately plain: versioned JSON with one
object per step and ``[src, dst, lo, hi, op]`` rows per transfer, so other
tools (or a human with ``jq``) can read it.

Only structural metadata survives the round trip (plan objects and other
rich ``meta`` values are dropped with a marker); correctness-relevant
content — steps, transfers, profile run lengths — round-trips exactly, and
the loader re-verifies invariants through the normal constructors.
"""

from __future__ import annotations

import json

from repro.collectives.base import CommStep, Schedule, Transfer

FORMAT_VERSION = 1

_JSON_SAFE = (str, int, float, bool, type(None))

_DROPPED_KEY = "_dropped_meta"


def _json_safe_value(value) -> tuple[bool, object]:
    """``(keep, converted)``: scalars pass through, flat sequences of
    scalars become lists (tuples like ``participants``/``mapping`` must
    survive the round trip; they come back as lists)."""
    if isinstance(value, _JSON_SAFE):
        return True, value
    if isinstance(value, (list, tuple)) and all(
        isinstance(item, _JSON_SAFE) for item in value
    ):
        return True, list(value)
    return False, None


def schedule_to_dict(schedule: Schedule) -> dict:
    """Convert a materialized schedule to a JSON-safe dict.

    Rich ``meta`` values (plan objects, ...) are dropped and their keys
    recorded under ``"_dropped_meta"``. The marker itself is excluded from
    the drop computation and merged with any marker from a previous round
    trip, so serialize → deserialize → serialize is idempotent (keys never
    accumulate or nest).
    """
    if schedule.steps is None:
        raise ValueError("only materialized schedules can be serialized")
    meta = {}
    dropped = set()
    for key, value in schedule.meta.items():
        if key == _DROPPED_KEY:
            continue
        keep, converted = _json_safe_value(value)
        if keep:
            meta[key] = converted
        else:
            dropped.add(key)
    prior = schedule.meta.get(_DROPPED_KEY)
    if isinstance(prior, (list, tuple)):
        dropped.update(str(key) for key in prior)
    if dropped:
        meta[_DROPPED_KEY] = sorted(dropped)
    return {
        "format_version": FORMAT_VERSION,
        "algorithm": schedule.algorithm,
        "n_nodes": schedule.n_nodes,
        "total_elems": schedule.total_elems,
        "steps": [
            {
                "stage": step.stage,
                "level": step.level,
                "transfers": [[t.src, t.dst, t.lo, t.hi, t.op] for t in step.transfers],
            }
            for step in schedule.steps
        ],
        "profile_counts": [count for _, count in schedule.timing_profile],
        "meta": meta,
    }


def schedule_from_dict(data: dict) -> Schedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output.

    The timing profile is reconstructed from the materialized steps using
    the stored run lengths, so profile and steps agree by construction.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported schedule format version {version!r}")
    steps = [
        CommStep(
            tuple(Transfer(src, dst, lo, hi, op) for src, dst, lo, hi, op in s["transfers"]),
            stage=s["stage"],
            level=s["level"],
        )
        for s in data["steps"]
    ]
    counts = data["profile_counts"]
    if sum(counts) != len(steps):
        raise ValueError(
            f"profile counts sum to {sum(counts)} but there are {len(steps)} steps"
        )
    profile = []
    idx = 0
    for count in counts:
        profile.append((steps[idx], count))
        idx += count
    return Schedule(
        algorithm=data["algorithm"],
        n_nodes=data["n_nodes"],
        total_elems=data["total_elems"],
        steps=steps,
        timing_profile=profile,
        meta=dict(data.get("meta", {})),
    )


def dump_schedule(schedule: Schedule, path: str) -> None:
    """Write a schedule to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(schedule_to_dict(schedule), fh)


def load_schedule(path: str) -> Schedule:
    """Read a schedule from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return schedule_from_dict(json.load(fh))
