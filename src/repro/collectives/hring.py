"""Hierarchical-Ring (H-Ring) All-reduce (Ueno & Yokota [28]).

Three phases over groups of ``m`` contiguous nodes:

1. **Intra-group ring All-reduce** — each group runs a full ring All-reduce
   on its members (reduce-scatter + all-gather over ``g`` chunks),
   ``2(max_g − 1)`` bulk-synchronous steps with every group progressing
   concurrently. Afterwards every member holds its group's sum.
2. **Inter-group ring All-reduce** — the group leaders (first member of
   each group) run a ring All-reduce over ``G = ⌈N/m⌉`` leaders,
   ``2(G − 1)`` steps. Leaders now hold the global sum.
3. **Leader broadcast** — each leader copies the full result to its group
   members in one step (``⌊m/2⌋`` wavelengths on the optical ring).

Total: ``2(m−1) + 2(G−1) + 1 = 2m + 2N/m − 3`` steps for ``m | N`` — exactly
the Table 1 closed form for ``⌈m/w⌉ = 1`` (e.g. N=1024, m=5 → 417 steps).
When wavelengths are scarce (``⌈m/w⌉ > 1``) the optical executor serializes
intra-group steps into rounds; the closed form in
:func:`repro.core.steps.hring_steps` accounts for that case analytically.
"""

from __future__ import annotations

import math

from repro.collectives.base import (
    CommStep,
    Schedule,
    Transfer,
    singleton_schedule,
)
from repro.collectives.ring import chunk_bounds
from repro.core.grouping import partition_ring
from repro.util.validation import check_positive_int


def _intra_steps(groups, total: int) -> list[CommStep]:
    """Concurrent per-group ring All-reduce steps (phases padded to max g)."""
    max_g = max(len(g.members) for g in groups)
    if max_g == 1:
        return []
    per_group_bounds = {g.members: chunk_bounds(total, len(g.members)) for g in groups}
    steps: list[CommStep] = []
    for s in range(max_g - 1):  # reduce-scatter
        transfers = []
        for g in groups:
            members, n = g.members, len(g.members)
            if s >= n - 1:
                continue
            bounds = per_group_bounds[members]
            for i in range(n):
                lo, hi = bounds[(i - s) % n]
                transfers.append(
                    Transfer(src=members[i], dst=members[(i + 1) % n], lo=lo, hi=hi, op="sum")
                )
        steps.append(CommStep(tuple(transfers), stage="reduce", level=1))
    for s in range(max_g - 1):  # all-gather
        transfers = []
        for g in groups:
            members, n = g.members, len(g.members)
            if s >= n - 1:
                continue
            bounds = per_group_bounds[members]
            for i in range(n):
                lo, hi = bounds[(i + 1 - s) % n]
                transfers.append(
                    Transfer(src=members[i], dst=members[(i + 1) % n], lo=lo, hi=hi, op="copy")
                )
        steps.append(CommStep(tuple(transfers), stage="broadcast", level=1))
    return steps


def _inter_steps(leaders: list[int], total: int) -> list[CommStep]:
    """Ring All-reduce over the group leaders."""
    n = len(leaders)
    if n == 1:
        return []
    bounds = chunk_bounds(total, n)
    steps: list[CommStep] = []
    for s in range(n - 1):
        transfers = tuple(
            Transfer(
                src=leaders[i],
                dst=leaders[(i + 1) % n],
                lo=bounds[(i - s) % n][0],
                hi=bounds[(i - s) % n][1],
                op="sum",
            )
            for i in range(n)
        )
        steps.append(CommStep(transfers, stage="reduce", level=2))
    for s in range(n - 1):
        transfers = tuple(
            Transfer(
                src=leaders[i],
                dst=leaders[(i + 1) % n],
                lo=bounds[(i + 1 - s) % n][0],
                hi=bounds[(i + 1 - s) % n][1],
                op="copy",
            )
            for i in range(n)
        )
        steps.append(CommStep(transfers, stage="broadcast", level=2))
    return steps


def _leader_broadcast(groups, total: int) -> CommStep | None:
    """Leaders push the global sum to their members (one step)."""
    transfers = []
    for g in groups:
        leader = g.members[0]
        for member in g.members[1:]:
            transfers.append(Transfer(src=leader, dst=member, lo=0, hi=total, op="copy"))
    if not transfers:
        return None
    return CommStep(tuple(transfers), stage="broadcast", level=1)


def _profile(n: int, m: int, total: int) -> list[tuple[CommStep, int]]:
    """Uniform-size timing profile (see ring.py for the approximation note)."""
    groups = partition_ring(list(range(n)), m)
    max_g = max(len(g.members) for g in groups)
    n_groups = len(groups)
    profile: list[tuple[CommStep, int]] = []
    if max_g > 1:
        intra_chunk = min(math.ceil(total / max_g), total)
        rs = []
        for g in groups:
            members, gn = g.members, len(g.members)
            if gn == 1:
                continue
            for i in range(gn):
                rs.append(Transfer(members[i], members[(i + 1) % gn], 0, intra_chunk, "sum"))
        profile.append((CommStep(tuple(rs), stage="reduce", level=1), max_g - 1))
        ag = tuple(
            Transfer(t.src, t.dst, t.lo, t.hi, "copy") for t in rs
        )
        profile.append((CommStep(ag, stage="broadcast", level=1), max_g - 1))
    if n_groups > 1:
        leaders = [g.members[0] for g in groups]
        inter_chunk = min(math.ceil(total / n_groups), total)
        rs = tuple(
            Transfer(leaders[i], leaders[(i + 1) % n_groups], 0, inter_chunk, "sum")
            for i in range(n_groups)
        )
        profile.append((CommStep(rs, stage="reduce", level=2), n_groups - 1))
        ag = tuple(Transfer(t.src, t.dst, t.lo, t.hi, "copy") for t in rs)
        profile.append((CommStep(ag, stage="broadcast", level=2), n_groups - 1))
        bcast = _leader_broadcast(groups, total)
        if bcast is not None:
            profile.append((bcast, 1))
    return profile


def build_hring_schedule(
    n_nodes: int,
    total_elems: int,
    m: int | None = None,
    materialize: bool | None = None,
) -> Schedule:
    """Build the H-Ring All-reduce schedule.

    Args:
        n_nodes: Participants N >= 1.
        total_elems: Gradient vector length.
        m: Intra-group size; defaults to the paper's ``min(5, N)``.
        materialize: Force/skip exact steps; ``None`` materializes for
            N <= 128.

    Returns:
        A :class:`Schedule`; ``meta["n_groups"]`` records ``⌈N/m⌉``.
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("total_elems", total_elems)
    if m is None:
        m = min(5, n_nodes)
    check_positive_int("m", m)
    if n_nodes == 1:
        return singleton_schedule("hring", total_elems)
    if m > n_nodes:
        raise ValueError(f"group size m={m} exceeds n_nodes={n_nodes}")
    if materialize is None:
        materialize = n_nodes <= 128

    groups = partition_ring(list(range(n_nodes)), m)
    steps: list[CommStep] | None = None
    if materialize:
        steps = list(_intra_steps(groups, total_elems))
        leaders = [g.members[0] for g in groups]
        inter = _inter_steps(leaders, total_elems)
        steps.extend(inter)
        if inter:  # members only lack the global sum if an inter phase ran
            bcast = _leader_broadcast(groups, total_elems)
            if bcast is not None:
                steps.append(bcast)
    return Schedule(
        algorithm="hring",
        n_nodes=n_nodes,
        total_elems=total_elems,
        steps=steps,
        timing_profile=_profile(n_nodes, m, total_elems),
        meta={
            "profile_exact": False,
            "n_groups": len(groups),
            "m": m,
        },
    )
