"""Swing All-reduce: distance-doubling ring with alternating short-cuts.

The logical construction of Swing (arXiv 2401.09356): the vector is split
into ``P`` blocks over ``P = 2^K`` core ranks and reduced in ``K`` steps of
recursive halving followed by ``K`` mirrored all-gather steps — the same
``2·⌈log₂P⌉`` step count as Rabenseifner's halving/doubling — but the peer
of rank ``i`` at step ``s`` is chosen on the *ring*:

    π(i, s) = (i + (−1)^i · ρ(s)) mod P,   ρ(s) = Σ_{k≤s} (−2)^k

so even ranks hop ``+ρ(s)`` and odd ranks ``−ρ(s)`` (ρ = 1, −1, 3, −5, 11,
…). ρ is always odd, which makes π an involution pairing even with odd
ranks, and the alternating signs keep the ring distance of every exchange
bounded by ≈ P/3 instead of recursive doubling's P/2 — the property that
makes Swing attractive on ring-like physical topologies.

Block routing follows the standard cover-set recursion: after the final
step rank ``i`` is responsible for block ``i`` alone (``c(i, K) = {i}``),
and one step earlier it was responsible for ``c(i, s) = c(i, s+1) ∪
c(π(i,s), s+1)``. Reduce-scatter step ``s`` therefore sends the blocks
``c(π(i,s), s+1)`` (``2^{K−s−1}`` of them, i.e. payload ``d/2^{s+1}``) to
the peer; the all-gather mirrors the recursion in reverse with ``copy``
transfers. Cover sets are generally non-contiguous, so materialized steps
carry one transfer per consecutive block run.

Non-powers of two use the MPICH fold of :mod:`repro.collectives.rd`: the
first ``2r`` nodes (``r = N − P``) fold odd→even in a pre-step and receive
the result back in a post-step, adding two full-vector steps.
"""

from __future__ import annotations

from repro.collectives.base import (
    CommStep,
    Schedule,
    Transfer,
    compress_steps,
    singleton_schedule,
)
from repro.collectives.rd import _core_node
from repro.collectives.ring import MATERIALIZE_DEFAULT_LIMIT, chunk_bounds
from repro.util.validation import check_positive_int


def swing_distance(s: int) -> int:
    """The step-``s`` hop distance ``ρ(s) = Σ_{k=0}^{s} (−2)^k`` (1, −1, 3, …)."""
    if s < 0:
        raise ValueError(f"step index must be >= 0, got {s!r}")
    return (1 - (-2) ** (s + 1)) // 3


def swing_peer(rank: int, s: int, p: int) -> int:
    """Swing's step-``s`` peer of ``rank`` among ``p`` core ranks.

    ρ(s) is odd, so the map is an involution that always pairs an even
    rank with an odd one — every rank has exactly one peer per step.
    """
    sign = 1 if rank % 2 == 0 else -1
    return (rank + sign * swing_distance(s)) % p


def _cover_sets(p: int) -> list[dict[int, tuple[int, ...]]]:
    """``cover[s][i]`` = blocks rank ``i`` is responsible for before step ``s``.

    ``cover[K][i] = (i,)``; going backward each step merges a rank's set
    with its peer's. The sets at a fixed ``s`` partition ``range(p)`` —
    the invariant that makes the reduce-scatter conflict-free.
    """
    k_levels = p.bit_length() - 1
    cover: list[dict[int, tuple[int, ...]]] = [{} for _ in range(k_levels + 1)]
    cover[k_levels] = {i: (i,) for i in range(p)}
    for s in range(k_levels - 1, -1, -1):
        nxt = cover[s + 1]
        cover[s] = {
            i: tuple(sorted(nxt[i] + nxt[swing_peer(i, s, p)])) for i in range(p)
        }
    return cover


def _block_transfers(
    src: int, dst: int, blocks: tuple[int, ...], bounds: list[tuple[int, int]], op: str
) -> list[Transfer]:
    """One transfer per consecutive run of block ids (blocks are sorted)."""
    transfers: list[Transfer] = []
    run_start = 0
    for idx in range(1, len(blocks) + 1):
        if idx == len(blocks) or blocks[idx] != blocks[idx - 1] + 1:
            lo = bounds[blocks[run_start]][0]
            hi = bounds[blocks[idx - 1]][1]
            transfers.append(Transfer(src=src, dst=dst, lo=lo, hi=hi, op=op))
            run_start = idx
    return transfers


def _materialize(n: int, p: int, r: int, total: int) -> list[CommStep]:
    k_levels = p.bit_length() - 1
    bounds = chunk_bounds(total, p)
    cover = _cover_sets(p)
    steps: list[CommStep] = []
    if r > 0:  # MPICH fold: odds of the first 2r nodes onto the evens
        steps.append(
            CommStep(
                tuple(
                    Transfer(src=2 * i + 1, dst=2 * i, lo=0, hi=total, op="sum")
                    for i in range(r)
                ),
                stage="reduce",
            )
        )
    for s in range(k_levels):  # reduce-scatter: send the peer's cover set
        transfers: list[Transfer] = []
        for i in range(p):
            peer = swing_peer(i, s, p)
            transfers.extend(
                _block_transfers(
                    _core_node(i, r), _core_node(peer, r),
                    cover[s + 1][peer], bounds, "sum",
                )
            )
        steps.append(CommStep(tuple(transfers), stage="reduce", level=s + 1))
    for t in range(k_levels):  # all-gather: mirror, nearest distance first
        s = k_levels - 1 - t
        transfers = []
        for i in range(p):
            peer = swing_peer(i, s, p)
            transfers.extend(
                _block_transfers(
                    _core_node(i, r), _core_node(peer, r),
                    cover[s + 1][i], bounds, "copy",
                )
            )
        steps.append(CommStep(tuple(transfers), stage="broadcast", level=s + 1))
    if r > 0:  # hand the result back to the folded odd nodes
        steps.append(
            CommStep(
                tuple(
                    Transfer(src=2 * i, dst=2 * i + 1, lo=0, hi=total, op="copy")
                    for i in range(r)
                ),
                stage="broadcast",
            )
        )
    return steps


def _profile(n: int, p: int, r: int, total: int) -> list[tuple[CommStep, int]]:
    """Synthetic timing profile: exact (src, dst) pattern, uniform blocks.

    Each core step is a circulant exchange, so the pattern is one coalesced
    transfer per (rank, peer) pair of ``count · ⌈total/P⌉`` elements —
    the same per-pair volume as the materialized block runs, without the
    O(N·P) interval objects.
    """
    import math

    k_levels = p.bit_length() - 1
    chunk = min(math.ceil(total / p), total)
    profile: list[tuple[CommStep, int]] = []
    if r > 0:
        profile.append(
            (
                CommStep(
                    tuple(
                        Transfer(2 * i + 1, 2 * i, 0, total, "sum") for i in range(r)
                    ),
                    stage="reduce",
                ),
                1,
            )
        )
    for s in range(k_levels):
        count = 1 << (k_levels - s - 1)
        size = min(count * chunk, total)
        step = CommStep(
            tuple(
                Transfer(
                    _core_node(i, r), _core_node(swing_peer(i, s, p), r),
                    0, size, "sum",
                )
                for i in range(p)
            ),
            stage="reduce",
            level=s + 1,
        )
        profile.append((step, 1))
    for t in range(k_levels):
        s = k_levels - 1 - t
        size = min((1 << t) * chunk, total)
        step = CommStep(
            tuple(
                Transfer(
                    _core_node(i, r), _core_node(swing_peer(i, s, p), r),
                    0, size, "copy",
                )
                for i in range(p)
            ),
            stage="broadcast",
            level=s + 1,
        )
        profile.append((step, 1))
    if r > 0:
        profile.append(
            (
                CommStep(
                    tuple(
                        Transfer(2 * i, 2 * i + 1, 0, total, "copy") for i in range(r)
                    ),
                    stage="broadcast",
                ),
                1,
            )
        )
    return profile


def build_swing_schedule(
    n_nodes: int, total_elems: int, materialize: bool | None = None
) -> Schedule:
    """Build the Swing All-reduce schedule.

    Args:
        n_nodes: Participants N >= 1 (any N; non-powers of two pay the
            two-step MPICH fold).
        total_elems: Gradient vector length.
        materialize: Force (True) or skip (False) exact step construction;
            ``None`` materializes for N <= 128 (cover-set materialization
            is O(N·P) intervals).

    Returns:
        A :class:`Schedule` with ``2⌊log₂N⌋`` core steps (+2 fold steps
        for non-powers of two). ``meta["profile_exact"]`` is True only for
        materialized schedules — the synthetic profile coalesces each
        peer's block runs into one uniform-chunk transfer.
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("total_elems", total_elems)
    if n_nodes == 1:
        return singleton_schedule("swing", total_elems)
    floor_log = n_nodes.bit_length() - 1
    p = 1 << floor_log
    r = n_nodes - p
    if materialize is None:
        materialize = n_nodes <= MATERIALIZE_DEFAULT_LIMIT
    if materialize:
        steps: list[CommStep] | None = _materialize(n_nodes, p, r, total_elems)
        profile = compress_steps(steps)
    else:
        steps = None
        profile = _profile(n_nodes, p, r, total_elems)
    return Schedule(
        algorithm="swing",
        n_nodes=n_nodes,
        total_elems=total_elems,
        steps=steps,
        timing_profile=profile,
        meta={"profile_exact": bool(materialize), "power_of_two": r == 0},
    )
