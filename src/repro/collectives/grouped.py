"""Group-parallel collectives: many disjoint All-reduces as one schedule.

Hybrid parallelism (Sec 6.2) runs *many* concurrent All-reduces: every
tensor-parallel group synchronizes activations, every data-parallel group
synchronizes its gradient shard — at the same time, on the same ring.
This module builds that as a single bulk-synchronous schedule:

- :func:`remap_schedule` rewrites a logical-rank schedule onto physical
  ring node ids (placement changes routing distances, hence timing);
- :func:`build_grouped_allreduce` builds one All-reduce per group (all
  groups the same size), remaps each onto its members, and merges them
  step-by-step into one schedule whose step count equals a single group's —
  the wavelength assignment then decides constructively whether the groups
  really can overlap or must serialize into rounds;
- :func:`verify_grouped_allreduce` checks the group-wise postcondition
  (every member of a group ends with exactly its group's sum).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.collectives.base import CommStep, Schedule, Transfer, compress_steps
from repro.collectives.registry import build_schedule
from repro.collectives.verify import initial_buffers, run_schedule
from repro.util.validation import check_positive_int


def remap_schedule(schedule: Schedule, mapping: Sequence[int], n_nodes: int) -> Schedule:
    """Rewrite node ids: logical rank ``i`` becomes ``mapping[i]``.

    Args:
        schedule: A materialized schedule over ranks ``0..k-1``.
        mapping: Physical node id per logical rank (distinct).
        n_nodes: Physical system size (bounds-checks the mapping).

    Returns:
        A new schedule over the physical ids, same structure.
    """
    mapping = list(mapping)
    if len(mapping) != schedule.n_nodes:
        raise ValueError(
            f"mapping has {len(mapping)} entries for a {schedule.n_nodes}-rank schedule"
        )
    if len(set(mapping)) != len(mapping):
        raise ValueError("mapping must be injective")
    for node in mapping:
        if not (0 <= node < n_nodes):
            raise ValueError(f"physical node {node} out of range [0, {n_nodes})")
    steps = [
        CommStep(
            tuple(
                Transfer(mapping[t.src], mapping[t.dst], t.lo, t.hi, t.op)
                for t in step.transfers
            ),
            stage=step.stage,
            level=step.level,
        )
        for step in schedule.iter_steps()
    ]
    return Schedule(
        algorithm=schedule.algorithm,
        n_nodes=n_nodes,
        total_elems=schedule.total_elems,
        steps=steps,
        timing_profile=compress_steps(steps),
        meta={**schedule.meta, "mapping": tuple(mapping)},
    )


def build_grouped_allreduce(
    groups: Sequence[Sequence[int]],
    total_elems: int,
    n_nodes: int,
    algorithm: str = "wrht",
    **kwargs,
) -> Schedule:
    """One concurrent All-reduce per group, merged into a single schedule.

    Args:
        groups: Disjoint physical node-id groups, all the same size.
        total_elems: Vector length each group reduces.
        n_nodes: Physical system size.
        algorithm: Per-group All-reduce algorithm.
        **kwargs: Forwarded to the per-group builder.

    Returns:
        A schedule with as many steps as one group's All-reduce; step ``k``
        holds the union of every group's step-``k`` transfers. ``meta``
        carries the groups for verification.
    """
    check_positive_int("total_elems", total_elems)
    check_positive_int("n_nodes", n_nodes)
    if not groups:
        raise ValueError("need at least one group")
    sizes = {len(g) for g in groups}
    if len(sizes) != 1:
        raise ValueError(f"all groups must have the same size, got sizes {sorted(sizes)}")
    group_size = sizes.pop()
    check_positive_int("group size", group_size)
    flat = [node for g in groups for node in g]
    if len(set(flat)) != len(flat):
        raise ValueError("groups must be disjoint")

    template = build_schedule(
        algorithm, group_size, total_elems, materialize=True, **kwargs
    )
    remapped = [remap_schedule(template, list(g), n_nodes) for g in groups]
    merged_steps: list[CommStep] = []
    for k in range(template.n_steps):
        transfers: list[Transfer] = []
        stage = "exchange"
        for sub in remapped:
            step = list(sub.iter_steps())[k]
            transfers.extend(step.transfers)
            stage = step.stage
        merged_steps.append(CommStep(tuple(transfers), stage=stage, level=0))
    if not merged_steps:
        from repro.collectives.base import singleton_schedule

        sched = singleton_schedule(f"grouped-{algorithm}", total_elems)
        sched.meta["groups"] = tuple(tuple(g) for g in groups)
        return sched
    return Schedule(
        algorithm=f"grouped-{algorithm}",
        n_nodes=n_nodes,
        total_elems=total_elems,
        steps=merged_steps,
        timing_profile=compress_steps(merged_steps),
        meta={
            "profile_exact": template.meta.get("profile_exact", False),
            "groups": tuple(tuple(g) for g in groups),
            "group_algorithm": algorithm,
        },
    )


def verify_grouped_allreduce(schedule: Schedule) -> None:
    """Assert the group-wise All-reduce postcondition.

    Every node in each of ``schedule.meta["groups"]`` must end with the
    exact elementwise sum over that group's initial vectors; nodes outside
    all groups must be untouched.
    """
    groups = schedule.meta.get("groups")
    if groups is None:
        raise ValueError("schedule has no groups metadata")
    buffers = initial_buffers(schedule.n_nodes, schedule.total_elems)
    original = buffers.copy()
    run_schedule(schedule, buffers)
    grouped_nodes = set()
    for group in groups:
        expected = original[list(group)].sum(axis=0)
        for node in group:
            grouped_nodes.add(node)
            if not np.array_equal(buffers[node], expected):
                raise AssertionError(
                    f"{schedule.algorithm}: node {node} of group {group} "
                    "does not hold its group sum"
                )
    for node in range(schedule.n_nodes):
        if node not in grouped_nodes and not np.array_equal(
            buffers[node], original[node]
        ):
            raise AssertionError(
                f"{schedule.algorithm}: bystander node {node} was modified"
            )
