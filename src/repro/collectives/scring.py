"""Short-circuiting ring (SCRing) All-reduce: chord-accelerated ring phases.

The latency repair for Ring All-reduce in the spirit of short-circuiting
rings (arXiv 2510.03491), adapted to this repo's bulk-synchronous step
model: Ring's ``2(N−1)`` steps are almost all latency (each step moves only
``d/N``), so SCRing cuts the *length of the dependency chains* instead of
the per-step volume.

For each chunk ``c`` (owned by node ``c``) the other ``N−1`` nodes — at
ring offsets ``1..N−1`` from the owner — are split into ``A`` contiguous
arcs. During reduce-scatter every arc accumulates its members'
contributions along a neighbor-hop chain toward the arc *head* (the arc
endpoint closest to the owner), and in one final delivery step all ``A``
heads send their arc partials straight to the owner over ring *chords*
(the short-circuit links). The all-gather mirrors this: one multicast step
from each owner to its chunk's arc heads, then neighbor-hop ``copy``
chains outward. All chunks proceed concurrently, so every step is a
circulant pattern.

With ``L = ⌈(N−1)/A⌉`` the longest arc, the schedule takes ``2L`` steps —
``A = 2`` (the ``pipeline=1`` default, one arc per ring direction) gives
``2⌈(N−1)/2⌉ ≈ N−1`` steps, half of Ring; the ``pipeline`` knob doubles
the arc count per unit, smoothly trading per-step fan-in (``A`` concurrent
wavelengths into each owner during the hub steps) for latency down to the
early-termination limit of 2 steps at ``A = N−1``.
"""

from __future__ import annotations

import math

from repro.collectives.base import (
    CommStep,
    Schedule,
    Transfer,
    compress_steps,
    singleton_schedule,
)
from repro.collectives.ring import MATERIALIZE_DEFAULT_LIMIT, chunk_bounds
from repro.util.validation import check_positive_int


def scring_arcs(n_nodes: int, pipeline: int) -> list[tuple[int, ...]]:
    """Arc layout shared by the builder and the closed forms.

    Returns one offset tuple per arc, ordered far-end → head; offsets are
    relative to the chunk owner (``1..N−1``), arcs are contiguous and
    balanced. The head is the arc endpoint with the smaller ring distance
    to the owner, so chains always accumulate toward the owner.
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("pipeline", pipeline)
    if n_nodes < 2:
        return []
    n_arcs = min(2 * pipeline, n_nodes - 1)
    arcs: list[tuple[int, ...]] = []
    for lo, hi in chunk_bounds(n_nodes - 1, n_arcs):
        offsets = tuple(range(lo + 1, hi + 1))
        lo_dist = min(offsets[0], n_nodes - offsets[0])
        hi_dist = min(offsets[-1], n_nodes - offsets[-1])
        if lo_dist <= hi_dist:  # head at the low-offset end: chain runs downward
            arcs.append(tuple(reversed(offsets)))
        else:  # head at the high-offset end: chain runs upward
            arcs.append(offsets)
    return arcs


def _materialize(
    n: int, total: int, arcs: list[tuple[int, ...]]
) -> list[CommStep]:
    bounds = chunk_bounds(total, n)
    longest = max(len(arc) for arc in arcs)
    steps: list[CommStep] = []
    for s in range(longest):  # reduce-scatter: chains end-aligned, then hub
        transfers: list[Transfer] = []
        for c in range(n):
            lo, hi = bounds[c]
            for arc in arcs:
                if s == longest - 1:  # delivery: every head chords to the owner
                    transfers.append(
                        Transfer((c + arc[-1]) % n, c, lo, hi, "sum")
                    )
                    continue
                j = s - (longest - len(arc))  # chain hop index (end-aligned)
                if 0 <= j < len(arc) - 1:
                    transfers.append(
                        Transfer(
                            (c + arc[j]) % n, (c + arc[j + 1]) % n, lo, hi, "sum"
                        )
                    )
        steps.append(CommStep(tuple(transfers), stage="reduce"))
    for t in range(longest):  # all-gather: hub multicast, then chains outward
        transfers = []
        for c in range(n):
            lo, hi = bounds[c]
            for arc in arcs:
                if t == 0:  # owner chords the reduced chunk to every head
                    transfers.append(
                        Transfer(c, (c + arc[-1]) % n, lo, hi, "copy")
                    )
                    continue
                j = len(arc) - 1 - t  # chains start-aligned (short arcs finish early)
                if j >= 0:
                    transfers.append(
                        Transfer(
                            (c + arc[j + 1]) % n, (c + arc[j]) % n, lo, hi, "copy"
                        )
                    )
        steps.append(CommStep(tuple(transfers), stage="broadcast"))
    return steps


def _profile(
    n: int, total: int, arcs: list[tuple[int, ...]]
) -> list[tuple[CommStep, int]]:
    """Synthetic circulant profile: chain, hub, hub, chain.

    Chain representatives use each arc's steady-state hop (exact once every
    chain is active; early ramp steps of shorter arcs carry fewer
    transfers). Hub steps — chord delivery and multicast — are exact
    patterns. Chunk sizes are uniform ``⌈total/N⌉``.
    """
    longest = max(len(arc) for arc in arcs)
    chunk = min(math.ceil(total / n), total)
    profile: list[tuple[CommStep, int]] = []

    def circulant(hops: list[tuple[int, int]], op: str, stage: str) -> CommStep:
        """One transfer per (chunk, hop): offsets are relative to the owner."""
        return CommStep(
            tuple(
                Transfer((c + src_off) % n, (c + dst_off) % n, 0, chunk, op)
                for c in range(n)
                for src_off, dst_off in hops
            ),
            stage=stage,
        )

    if longest > 1:  # steady-state chain hop of every multi-node arc
        rs_hops = [(arc[-2], arc[-1]) for arc in arcs if len(arc) > 1]
        profile.append((circulant(rs_hops, "sum", "reduce"), longest - 1))
    delivery = [(arc[-1], 0) for arc in arcs]  # heads chord to the owner
    profile.append((circulant(delivery, "sum", "reduce"), 1))
    multicast = [(0, arc[-1]) for arc in arcs]  # owner chords to the heads
    profile.append((circulant(multicast, "copy", "broadcast"), 1))
    if longest > 1:
        ag_hops = [(arc[-1], arc[-2]) for arc in arcs if len(arc) > 1]
        profile.append((circulant(ag_hops, "copy", "broadcast"), longest - 1))
    return profile


def build_scring_schedule(
    n_nodes: int,
    total_elems: int,
    materialize: bool | None = None,
    pipeline: int = 1,
) -> Schedule:
    """Build the short-circuiting-ring All-reduce schedule.

    Args:
        n_nodes: Participants N >= 1 (any N — no power-of-two requirement).
        total_elems: Gradient vector length.
        materialize: Force (True) or skip (False) exact step construction;
            ``None`` materializes for N <= 128 (O(N²) transfers, like Ring).
        pipeline: Short-circuit degree >= 1. The chunk arcs number
            ``min(2·pipeline, N−1)``; 1 halves Ring's latency, larger
            values trade hub-step fan-in for fewer steps down to the
            2-step limit.

    Returns:
        A :class:`Schedule` with ``2·⌈(N−1)/min(2·pipeline, N−1)⌉`` steps.
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("total_elems", total_elems)
    check_positive_int("pipeline", pipeline)
    if n_nodes == 1:
        return singleton_schedule("scring", total_elems)
    arcs = scring_arcs(n_nodes, pipeline)
    lengths = {len(arc) for arc in arcs}
    if materialize is None:
        materialize = n_nodes <= MATERIALIZE_DEFAULT_LIMIT
    if materialize:
        steps: list[CommStep] | None = _materialize(n_nodes, total_elems, arcs)
        profile = compress_steps(steps)
        exact = True
    else:
        steps = None
        profile = _profile(n_nodes, total_elems, arcs)
        exact = len(lengths) == 1 and total_elems % n_nodes == 0
    return Schedule(
        algorithm="scring",
        n_nodes=n_nodes,
        total_elems=total_elems,
        steps=steps,
        timing_profile=profile,
        meta={
            "profile_exact": exact,
            "power_of_two": n_nodes & (n_nodes - 1) == 0,
            "pipeline": pipeline,
            "arcs": len(arcs),
        },
    )
