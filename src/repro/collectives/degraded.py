"""Shrunk-node WRHT schedules: the collective view of degraded mode.

When nodes drop out, the All-reduce must shrink to the survivors. The
construction mirrors :mod:`repro.collectives.grouped`: build a *logical*
WRHT template over the ``k`` survivors (``plan_wrht(k, ...)`` decides the
group size, hierarchy, and whether the all-to-all shortcut still fits the
remaining wavelength budget) and remap the logical ranks onto the sorted
surviving physical ids. Representative re-election falls out of the
regrouping — the middle member of each survivor group becomes its
representative, so a dead former representative can never reappear.

The resulting schedule keeps ``algorithm="wrht"`` and carries two meta
keys the static verifier understands:

- ``meta["plan"]`` — the :class:`~repro.core.planner.WrhtPlan` over the
  *survivor count* (PLAN004 checks θ against it);
- ``meta["participants"]`` — the sorted surviving physical ids (PLAN003
  checks that participants end with the survivors' sum and that dead /
  bystander nodes are untouched).
"""

from __future__ import annotations

from typing import Sequence

from repro.collectives.base import Schedule
from repro.collectives.grouped import remap_schedule
from repro.collectives.wrht_schedule import build_wrht_schedule
from repro.core.constraints import OpticalPhyParams
from repro.core.planner import WrhtPlan, plan_wrht
from repro.util.validation import check_positive_int


def _check_survivors(survivors: Sequence[int], n_nodes: int) -> tuple[int, ...]:
    ordered = tuple(sorted(survivors))
    if len(ordered) < 2:
        raise ValueError(
            f"a shrunk All-reduce needs at least 2 survivors, got {len(ordered)}"
        )
    if len(set(ordered)) != len(ordered):
        raise ValueError("survivors contain duplicate node ids")
    for node in ordered:
        if not (0 <= node < n_nodes):
            raise ValueError(f"survivor {node} out of range [0, {n_nodes})")
    return ordered


def build_shrunk_wrht_schedule(
    n_nodes: int,
    total_elems: int,
    survivors: Sequence[int],
    n_wavelengths: int = 64,
    m: int | None = None,
    phy: OpticalPhyParams | None = None,
    plan: WrhtPlan | None = None,
) -> Schedule:
    """WRHT over a subset of the ring's nodes.

    Args:
        n_nodes: Physical ring size N (the schedule's node-id space).
        total_elems: Gradient vector length.
        survivors: Physical ids participating (>= 2, distinct); sorted
            internally so logical rank ``i`` maps to the ``i``-th smallest
            survivor — ring order is preserved, keeping groups contiguous.
        n_wavelengths: Wavelength budget for planning (pass the *degraded*
            budget so the all-to-all feasibility test sees reality).
        m: Optional forced group size.
        phy: Optional (possibly droop-derated) physical-layer parameters.
        plan: Pre-computed plan over ``len(survivors)`` logical ranks;
            overrides ``n_wavelengths``/``m``/``phy``.

    Returns:
        A materialized ``"wrht"`` schedule over the physical ids with
        ``meta["plan"]`` (survivor-count plan) and ``meta["participants"]``.
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("total_elems", total_elems)
    ordered = _check_survivors(survivors, n_nodes)
    k = len(ordered)
    if plan is None:
        plan = plan_wrht(k, n_wavelengths, m=m, phy=phy)
    elif plan.n_nodes != k:
        raise ValueError(
            f"plan is for N={plan.n_nodes} but there are {k} survivors"
        )
    template = build_wrht_schedule(k, total_elems, plan=plan)
    schedule = remap_schedule(template, ordered, n_nodes)
    schedule.meta["participants"] = ordered
    return schedule


def build_shrunk_schedule(
    algorithm: str,
    n_nodes: int,
    total_elems: int,
    survivors: Sequence[int],
    **kwargs,
) -> Schedule:
    """Any registered All-reduce over a subset of the ring's nodes.

    The generic analogue of :func:`build_shrunk_wrht_schedule` used by the
    rival-collectives fault sweep: build the algorithm's template over the
    ``k`` survivors and remap logical rank ``i`` onto the ``i``-th smallest
    surviving physical id (ring order preserved). The result carries
    ``meta["participants"]`` so PLAN003 verifies the survivors' reduction
    and PLAN004 checks the closed form against the survivor count.

    Args:
        algorithm: Any :func:`repro.collectives.registry.available_algorithms`
            name (for ``"wrht"`` prefer :func:`build_shrunk_wrht_schedule`,
            which replans the hierarchy).
        n_nodes: Physical ring size N (the schedule's node-id space).
        total_elems: Gradient vector length.
        survivors: Physical ids participating (>= 2, distinct).
        **kwargs: Forwarded to the builder (``pipeline``, ``m``, ...).
    """
    from repro.collectives.registry import build_schedule

    check_positive_int("n_nodes", n_nodes)
    check_positive_int("total_elems", total_elems)
    ordered = _check_survivors(survivors, n_nodes)
    template = build_schedule(
        algorithm, len(ordered), total_elems, materialize=True, **kwargs
    )
    schedule = remap_schedule(template, ordered, n_nodes)
    schedule.meta["participants"] = ordered
    return schedule


def shrunk_representatives(
    plan: WrhtPlan, survivors: Sequence[int]
) -> tuple[tuple[int, ...], ...]:
    """Physical representative ids per hierarchy level after re-election.

    ``plan`` is the survivor-count plan (logical ranks ``0..k-1``);
    ``survivors`` the sorted physical ids. Useful for asserting that a dead
    former representative was actually re-elected away.
    """
    ordered = tuple(sorted(survivors))
    if plan.n_nodes != len(ordered):
        raise ValueError(
            f"plan is for N={plan.n_nodes} but there are {len(ordered)} survivors"
        )
    return tuple(
        tuple(ordered[rank] for rank in level.representatives)
        for level in plan.levels
    )
