"""Schedule data model shared by all All-reduce builders and executors.

Semantics
---------

A :class:`Schedule` is executed step by step; steps are bulk-synchronous
barriers (the paper's model: MRRs reconfigure between steps, and a step
completes when its slowest transfer completes). Within one step every
:class:`Transfer` reads the *pre-step* contents of its source buffer, so
symmetric exchanges (recursive doubling, all-to-all) are well-defined.

A transfer moves the element range ``[lo, hi)`` of the source node's vector
to the destination, where it is combined according to ``op``:

- ``"sum"``  — destination accumulates (``dst[lo:hi] += src[lo:hi]``),
- ``"copy"`` — destination overwrites (``dst[lo:hi] = src[lo:hi]``).

Timing profiles
---------------

Materializing every step of Ring All-reduce at N=4096 would allocate ~33M
transfer objects. Since timing depends only on each step's communication
*pattern* (who sends how many bytes to whom), builders also expose
``timing_profile``: a list of ``(CommStep, repeat_count)`` pairs with one
representative step per run of identical-pattern steps. Executors consume
the profile; the numerical verifier consumes the exact materialized steps
(built only for sizes where that is cheap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Literal, Sequence

from repro.check.intervals import Claim
from repro.util.validation import check_positive_int

Op = Literal["sum", "copy"]


@dataclass(frozen=True)
class Transfer:
    """One point-to-point transfer of an element range.

    Attributes:
        src: Sending node id.
        dst: Receiving node id.
        lo: First element index (inclusive).
        hi: Last element index (exclusive).
        op: How the destination combines the payload (``sum``/``copy``).
    """

    src: int
    dst: int
    lo: int
    hi: int
    op: Op = "sum"

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-transfer at node {self.src}")
        if not (0 <= self.lo <= self.hi):
            raise ValueError(f"bad element range [{self.lo}, {self.hi})")
        if self.op not in ("sum", "copy"):
            raise ValueError(f"op must be 'sum' or 'copy', got {self.op!r}")

    @property
    def n_elems(self) -> int:
        """Number of vector elements moved."""
        return self.hi - self.lo

    def write_claim(self) -> Claim:
        """This transfer's destination write as an interval claim.

        The claim resource is the destination node; ``sum`` writes are
        combinable (they commute), ``copy`` writes are exclusive. The
        shared interval engine (:mod:`repro.check.intervals`) consumes
        these for conflict detection in the numerical executor and the
        static plan verifier alike.
        """
        return Claim(
            resource=self.dst,
            lo=self.lo,
            hi=self.hi,
            owner=self,
            combinable=self.op == "sum",
        )


@dataclass(frozen=True)
class CommStep:
    """One bulk-synchronous step of concurrent transfers.

    Attributes:
        transfers: Concurrent transfers; a destination may receive multiple
            ``sum`` transfers in one step (WRHT group collect), but at most
            one ``copy`` per overlapping range (checked by the verifier).
        stage: ``"reduce"``, ``"broadcast"`` or ``"exchange"`` — used for
            reporting and assertions, not semantics.
        level: Hierarchy level (1-based) for tree/WRHT steps, 0 otherwise.
    """

    transfers: tuple[Transfer, ...]
    stage: str = "reduce"
    level: int = 0

    def __post_init__(self) -> None:
        if not self.transfers:
            raise ValueError("a CommStep needs at least one transfer")

    @property
    def n_transfers(self) -> int:
        """Number of concurrent transfers."""
        return len(self.transfers)

    def total_elems(self) -> int:
        """Sum of element counts across transfers (for byte accounting)."""
        return sum(t.n_elems for t in self.transfers)

    def pattern_key(self) -> tuple:
        """Hashable key identifying the step's timing-relevant pattern.

        Two steps with the same key take exactly the same time on any of the
        substrates: same (src, dst, size, op) multiset. Element *positions*
        are deliberately excluded — a Ring reduce-scatter step moving chunk
        ``c`` costs the same as one moving chunk ``c+1``.
        """
        return tuple(sorted((t.src, t.dst, t.n_elems, t.op) for t in self.transfers))

    def write_claims(self) -> list[Claim]:
        """Dataflow metadata: every non-empty transfer's destination claim.

        The static verifier's conflict and conservation rules consume this
        instead of re-deriving write sets from raw transfers.
        """
        return [t.write_claim() for t in self.transfers if t.n_elems > 0]

    def reads_by_node(self) -> dict[int, list[Transfer]]:
        """Dataflow metadata: transfers grouped by the node they read from.

        All reads observe pre-step state (bulk-synchronous semantics), so
        this grouping fully describes what a step consumes.
        """
        by_src: dict[int, list[Transfer]] = {}
        for t in self.transfers:
            if t.n_elems > 0:
                by_src.setdefault(t.src, []).append(t)
        return by_src


@dataclass
class Schedule:
    """A complete All-reduce schedule plus its compressed timing profile.

    Attributes:
        algorithm: Builder name (``"ring"``, ``"wrht"``, ...).
        n_nodes: Number of participating nodes.
        total_elems: Length of the gradient vector being reduced.
        steps: Materialized steps (may be ``None`` at large scale).
        timing_profile: ``(representative_step, count)`` pairs covering the
            whole schedule in order.
        meta: Builder-specific extras (e.g. the :class:`WrhtPlan`).
    """

    algorithm: str
    n_nodes: int
    total_elems: int
    steps: list[CommStep] | None
    timing_profile: list[tuple[CommStep, int]]
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive_int("n_nodes", self.n_nodes)
        check_positive_int("total_elems", self.total_elems)
        if not self.timing_profile and self.n_nodes > 1:
            raise ValueError("schedule must have a timing profile")

    @property
    def n_steps(self) -> int:
        """Total communication steps."""
        return sum(count for _, count in self.timing_profile)

    def lowering_profile(self) -> Iterator[tuple[CommStep, int, tuple]]:
        """The stable lowering entry point backends consume.

        Yields ``(representative_step, count, pattern_key)`` triples in
        schedule order — the timing profile with each entry's pattern key
        precomputed, so every backend deduplicates identically.
        """
        for step, count in self.timing_profile:
            yield step, count, step.pattern_key()

    def iter_steps(self) -> Iterator[CommStep]:
        """Iterate materialized steps (requires ``steps`` to be present)."""
        if self.steps is None:
            raise RuntimeError(
                f"{self.algorithm} schedule was built without materialized "
                "steps (pass materialize=True to the builder)"
            )
        return iter(self.steps)

    def validate_against_profile(self) -> None:
        """Check that materialized steps and timing profile agree.

        Called by tests: step count must match, and each materialized step's
        pattern key must equal its profile representative's.
        """
        if self.steps is None:
            return
        if len(self.steps) != self.n_steps:
            raise AssertionError(
                f"{self.algorithm}: {len(self.steps)} materialized steps vs "
                f"profile total {self.n_steps}"
            )
        idx = 0
        for rep, count in self.timing_profile:
            key = rep.pattern_key()
            for _ in range(count):
                actual = self.steps[idx].pattern_key()
                if actual != key:
                    raise AssertionError(
                        f"{self.algorithm}: step {idx} pattern differs from "
                        "its profile representative"
                    )
                idx += 1


def compress_steps(steps: Sequence[CommStep]) -> list[tuple[CommStep, int]]:
    """Run-length encode consecutive steps with identical pattern keys."""
    profile: list[tuple[CommStep, int]] = []
    prev_key = None
    for step in steps:
        key = step.pattern_key()
        if profile and key == prev_key:
            rep, count = profile[-1]
            profile[-1] = (rep, count + 1)
        else:
            profile.append((step, 1))
            prev_key = key
    return profile


def singleton_schedule(algorithm: str, total_elems: int) -> Schedule:
    """The degenerate 1-node schedule: nothing to communicate."""
    return Schedule(
        algorithm=algorithm,
        n_nodes=1,
        total_elems=total_elems,
        steps=[],
        timing_profile=[],
    )
