"""Recursive-doubling (RD) All-reduce with the MPICH non-power-of-two fix-up.

The Sec 5.6 electrical baseline. For ``N = 2^K`` nodes, step ``k`` pairs
node ``q`` with ``q XOR 2^k``; both exchange their full partial sums and
accumulate, so every node holds the global sum after ``K`` steps. For other
``N``, let ``P = 2^⌊log₂N⌋`` and ``r = N − P``: a pre-step folds the first
``2r`` nodes pairwise onto the even members, the power-of-two core runs on
the ``P`` survivors, and a post-step copies results back — ``⌊log₂N⌋ + 2``
steps total (matching :func:`repro.core.steps.rd_steps`).

A second variant, ``"halving_doubling"`` (Rabenseifner's algorithm — the
large-message RD used by MPI implementations), is provided for the ablation
study in ``benchmarks/bench_ablation_rd.py``: a recursive-*halving*
reduce-scatter (exchanged payload halves every step: d/2, d/4, …, d/P)
followed by a recursive-doubling all-gather, ``2·log₂P`` core steps moving
``≈2d`` total instead of ``K·d``. The paper's Fig 7 behaviour matches the
full-vector variant (see EXPERIMENTS.md), which therefore stays the
default.
"""

from __future__ import annotations

from repro.collectives.base import (
    CommStep,
    Schedule,
    Transfer,
    compress_steps,
    singleton_schedule,
)
from repro.collectives.ring import chunk_bounds
from repro.util.validation import check_positive_int

VARIANTS = ("doubling", "halving_doubling")


def _participant_label(node: int, r: int) -> int | None:
    """Map a node id to its core-phase rank, or ``None`` if folded away."""
    if node < 2 * r:
        return node // 2 if node % 2 == 0 else None
    return node - r


def _core_node(rank: int, r: int) -> int:
    """Inverse of :func:`_participant_label` for participating ranks."""
    return 2 * rank if rank < r else rank + r


def _halving_doubling_core_steps(
    p: int, r: int, total_elems: int
) -> list[CommStep]:
    """Rabenseifner core: recursive-halving RS + recursive-doubling AG."""
    k_levels = p.bit_length() - 1
    bounds = chunk_bounds(total_elems, p)

    def window_elems(lo_chunk: int, hi_chunk: int) -> tuple[int, int]:
        return bounds[lo_chunk][0], bounds[hi_chunk - 1][1]

    windows = {rank: (0, p) for rank in range(p)}
    steps: list[CommStep] = []
    for k in range(k_levels - 1, -1, -1):  # reduce-scatter, farthest first
        transfers = []
        next_windows = {}
        for rank in range(p):
            peer = rank ^ (1 << k)
            lo, hi = windows[rank]
            mid = (lo + hi) // 2
            if rank & (1 << k):
                keep, send = (mid, hi), (lo, mid)
            else:
                keep, send = (lo, mid), (mid, hi)
            e_lo, e_hi = window_elems(*send)
            transfers.append(
                Transfer(
                    src=_core_node(rank, r), dst=_core_node(peer, r),
                    lo=e_lo, hi=e_hi, op="sum",
                )
            )
            next_windows[rank] = keep
        windows = next_windows
        steps.append(CommStep(tuple(transfers), stage="reduce", level=k + 1))
    for k in range(k_levels):  # all-gather, nearest first
        transfers = []
        next_windows = {}
        for rank in range(p):
            peer = rank ^ (1 << k)
            lo, hi = windows[rank]
            e_lo, e_hi = window_elems(lo, hi)
            transfers.append(
                Transfer(
                    src=_core_node(rank, r), dst=_core_node(peer, r),
                    lo=e_lo, hi=e_hi, op="copy",
                )
            )
            peer_lo, peer_hi = windows[peer]
            next_windows[rank] = (min(lo, peer_lo), max(hi, peer_hi))
        windows = next_windows
        steps.append(CommStep(tuple(transfers), stage="broadcast", level=k + 1))
    return steps


def build_rd_schedule(
    n_nodes: int,
    total_elems: int,
    materialize: bool | None = None,
    variant: str = "doubling",
) -> Schedule:
    """Build a recursive-doubling All-reduce schedule.

    Args:
        n_nodes: Participants N >= 1 (any N).
        total_elems: Gradient vector length.
        materialize: API symmetry; RD is always cheap to materialize
            (O(N log N) transfers) so exact steps are built unless disabled.
        variant: ``"doubling"`` (full-vector exchanges, the paper baseline)
            or ``"halving_doubling"`` (Rabenseifner; see module docstring).
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("total_elems", total_elems)
    if variant not in VARIANTS:
        raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
    if n_nodes == 1:
        return singleton_schedule("rd", total_elems)

    floor_log = n_nodes.bit_length() - 1
    p = 1 << floor_log
    r = n_nodes - p
    if p < 2:
        # Unreachable today (n_nodes == 1 returned above, n_nodes < 1 was
        # rejected), but the floor path must never emit an empty core: a
        # regression surfaces as a typed error, not an ill-formed schedule.
        raise ValueError(
            f"recursive doubling needs a >= 2-rank core, got n_nodes={n_nodes}"
        )
    steps: list[CommStep] = []

    if r > 0:  # pre-step: odd members of the first 2r nodes fold onto evens
        steps.append(
            CommStep(
                tuple(
                    Transfer(src=2 * i + 1, dst=2 * i, lo=0, hi=total_elems, op="sum")
                    for i in range(r)
                ),
                stage="reduce",
            )
        )

    if variant == "doubling":
        for k in range(floor_log):  # full-vector exchange among P survivors
            transfers = []
            for rank in range(p):
                peer = rank ^ (1 << k)
                transfers.append(
                    Transfer(
                        src=_core_node(rank, r),
                        dst=_core_node(peer, r),
                        lo=0,
                        hi=total_elems,
                        op="sum",
                    )
                )
            steps.append(CommStep(tuple(transfers), stage="exchange", level=k + 1))
    elif p >= 2:
        steps.extend(_halving_doubling_core_steps(p, r, total_elems))

    if r > 0:  # post-step: evens hand the result back to the folded odds
        steps.append(
            CommStep(
                tuple(
                    Transfer(src=2 * i, dst=2 * i + 1, lo=0, hi=total_elems, op="copy")
                    for i in range(r)
                ),
                stage="broadcast",
            )
        )

    return Schedule(
        algorithm="rd",
        n_nodes=n_nodes,
        total_elems=total_elems,
        steps=steps if materialize is not False else None,
        timing_profile=compress_steps(steps),
        meta={"profile_exact": True, "power_of_two": r == 0, "variant": variant},
    )
