"""ASCII rendering of schedules — the debugging view of Figure 2/3.

``render_schedule`` draws a step-by-node grid showing, for every node and
step, whether it sends (``>``/``<`` by ring direction), receives (``v``),
does both (``x``) or idles (``.``) — the textual equivalent of the paper's
arrow diagrams. ``render_step`` lists one step's transfers with their
ranges. Used by the CLI's ``show`` command and handy in test failures.
"""

from __future__ import annotations

from repro.collectives.base import CommStep, Schedule


def _node_symbol(node: int, step: CommStep, n_nodes: int) -> str:
    sends_cw = sends_ccw = receives = False
    for t in step.transfers:
        if t.n_elems == 0:
            continue
        if t.src == node:
            if (t.dst - t.src) % n_nodes <= n_nodes // 2:
                sends_cw = True
            else:
                sends_ccw = True
        if t.dst == node:
            receives = True
    sending = sends_cw or sends_ccw
    if sending and receives:
        return "x"
    if sends_cw and sends_ccw:
        return "*"
    if sends_cw:
        return ">"
    if sends_ccw:
        return "<"
    if receives:
        return "v"
    return "."


def render_schedule(schedule: Schedule, max_nodes: int = 64, max_steps: int = 40) -> str:
    """Step-by-node activity grid.

    Args:
        schedule: A materialized schedule.
        max_nodes: Clip the node axis beyond this (with an ellipsis note).
        max_steps: Clip the step axis beyond this.

    Returns:
        A multi-line string; one row per step.
    """
    steps = list(schedule.iter_steps())
    n = schedule.n_nodes
    clipped_nodes = min(n, max_nodes)
    lines = [
        f"{schedule.algorithm}: {len(steps)} steps x {n} nodes"
        + (f" (showing first {clipped_nodes} nodes)" if clipped_nodes < n else "")
    ]
    header = "          " + "".join(str(i % 10) for i in range(clipped_nodes))
    lines.append(header)
    for i, step in enumerate(steps[:max_steps]):
        row = "".join(_node_symbol(node, step, n) for node in range(clipped_nodes))
        lines.append(f"{i + 1:3d} {step.stage[:5]:>5s} {row}")
    if len(steps) > max_steps:
        lines.append(f"... ({len(steps) - max_steps} more steps)")
    lines.append("legend: > cw send   < ccw send   v receive   x send+receive   . idle")
    return "\n".join(lines)


def render_step(step: CommStep, max_transfers: int = 32) -> str:
    """One step's transfers, one line each."""
    lines = [f"step[{step.stage}] {step.n_transfers} transfer(s):"]
    for t in step.transfers[:max_transfers]:
        lines.append(f"  {t.src:5d} -> {t.dst:5d}  [{t.lo}, {t.hi})  {t.op}")
    if step.n_transfers > max_transfers:
        lines.append(f"  ... ({step.n_transfers - max_transfers} more)")
    return "\n".join(lines)
