"""Reproduction-specific AST lint (REP001–REP007). Stdlib ``ast`` only.

General-purpose linters cannot know that this repo's determinism contract
forbids unseeded RNGs, that timing quantities are floats that must never be
compared with ``==``, or that sweep workers pickle exceptions across process
boundaries. This pass encodes exactly those house rules:

=======  ==============================================================
REP001   Unseeded RNG construction (``default_rng()`` / ``Random()``
         with no seed, or the ``random`` module's global functions).
         Sweeps replay cached plans; hidden RNG state breaks replay.
REP002   ``==`` / ``!=`` where an operand is named like a timing
         quantity (``duration``, ``*_s``, ``clock`` ...). Float timing
         must be compared with tolerances or avoided.
REP003   Exception class with a custom ``__init__`` but no
         ``__reduce__``/``__getstate__``/``__setstate__``. Such
         exceptions may not survive the pickling round-trip through
         sweep workers (multi-arg ``__init__`` breaks the default
         reduce protocol).
REP005   ``tracer.emit(time, "name", ...)`` with a literal category
         absent from :data:`repro.sim.trace.TRACE_EVENTS`. Tests filter
         traces by these names; a typo silently records nothing.
REP006   Statement-level ``for`` loop over ``step.transfers`` in an
         executor hot path (the pricing modules). Per-transfer Python
         accumulation is the pattern the vectorized executors replaced;
         inherently sequential loops (per-pair routing) are allowlisted
         with a ``# REP006: <reason>`` pragma on the loop line or the
         comment block directly above it.
REP007   Direct plan-cache mutation (``.put``/``.clear``/``.resize`` on
         a plan-cache object) outside the cache layers themselves and
         the lowering seams. All persistence-visible writes must flow
         through the ``plan_cache`` seam so the service's sharded store
         observes them; escape hatch: ``# REP007: <reason>`` pragma.
REP008   Suppression pragma without a reason (``# REP006`` bare, or
         ``# REP006:`` with nothing after the colon). A pragma is an
         audit record; a bare one suppresses nothing and is flagged.
=======  ==============================================================

REP004 (import of the late ``repro.optical.plancache`` alias) is retired:
the alias was removed in PR 7 and the id is never reused.

**Pragmas.** Every rule in this file — and every ``CONC``/``DET`` rule of
the flow analyzer (:mod:`repro.check.flow`) — honours one uniform escape
hatch: a ``# <RULEID>: <reason>`` comment on the offending line or in the
comment block directly above it suppresses that rule's finding there. The
reason is mandatory (see REP008); :func:`pragma_suppresses` is the single
shared implementation.

Files that fail to parse are reported as a structured ``SYNTAX`` finding
(file, line, message) instead of raising, so one broken file cannot mask
the findings of every other file in the batch.

Run as a module over one or more files/directories::

    $ python -m repro.check.lint src

Exit status is 1 when any finding is produced, 0 when clean.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Callable, Iterator

from repro.check.findings import Finding, Severity

#: Functions on the ``random`` module that mutate hidden global state.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    }
)

#: Identifier shapes that denote timing quantities (REP002).
_TIMING_NAME = re.compile(
    r"(^|_)(time|duration|clock|latency|elapsed|deadline|now)($|_)|_s$"
)

#: Method names whose presence makes a custom-``__init__`` exception safe
#: to pickle (REP003).
_PICKLE_HOOKS = frozenset({"__reduce__", "__getstate__", "__setstate__"})

LINT_RULES: dict[str, str] = {
    "REP001": "unseeded RNG construction",
    "REP002": "float equality on a timing quantity",
    "REP003": "exception with custom __init__ but no pickle hook",
    "REP005": "trace category not registered in TRACE_EVENTS",
    "REP006": "per-transfer Python loop in an executor hot path",
    "REP007": "direct plan-cache mutation outside the cache/lowering seams",
    "REP008": "suppression pragma without a reason",
}
"""Rule id -> short title, for ``--list-rules`` and the docs."""

#: Rule id reserved for unparseable files (always reported, never
#: ``--select``-able away: no other rule can run on such a file).
SYNTAX_RULE = "SYNTAX"

#: One suppression pragma: ``# <RULEID>: <reason>`` at the end of a line.
#: The id must be the whole comment tail (prose like "# REP006 is retired"
#: does not match) and the reason group is ``None`` for bare pragmas.
_PRAGMA = re.compile(r"#\s*((?:REP|CONC|DET)\d{3})\s*(?::\s*(\S.*?))?\s*$")


def pragma_at(line: str) -> tuple[str, str | None] | None:
    """The ``(rule_id, reason)`` of a pragma-shaped comment on ``line``.

    ``None`` when the line carries no pragma; ``(id, None)`` for a bare
    pragma (flagged by REP008, suppresses nothing).
    """
    match = _PRAGMA.search(line)
    if match is None:
        return None
    return match.group(1), match.group(2)


def pragma_suppresses(rule_id: str, lines: list[str], lineno: int) -> bool:
    """Whether a reasoned ``# <rule_id>: <reason>`` pragma covers ``lineno``.

    The single escape-hatch implementation shared by every REP lint rule
    and every CONC/DET flow rule: the pragma may sit on the offending line
    itself or anywhere in the comment block directly above it, and must
    carry a non-empty reason (bare pragmas are rejected — see REP008).
    """
    index = lineno - 1
    if 0 <= index < len(lines):
        found = pragma_at(lines[index])
        if found is not None and found[0] == rule_id and found[1]:
            return True
    index -= 1
    while index >= 0 and lines[index].lstrip().startswith("#"):
        found = pragma_at(lines[index])
        if found is not None and found[0] == rule_id and found[1]:
            return True
        index -= 1
    return False


def syntax_finding(exc: SyntaxError, path: str) -> Finding:
    """The structured ``SYNTAX`` finding for an unparseable file."""
    lineno = exc.lineno or 0
    return Finding(
        rule_id=SYNTAX_RULE,
        severity=Severity.ERROR,
        message=f"file does not parse: {exc.msg}",
        location=f"{path}:{lineno}",
        details={"line": lineno},
    )

#: Executor pricing modules where per-transfer statement loops are hot
#: (REP006). Matched as path suffixes so the rule follows the files, not
#: the checkout location.
_HOT_PATH_SUFFIXES = (
    "repro/optical/network.py",
    "repro/optical/livesim.py",
    "repro/electrical/network.py",
)


def _terminal_name(node: ast.expr) -> str | None:
    """The rightmost identifier of a name/attribute/call/subscript chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    if isinstance(node, ast.Subscript):
        return _terminal_name(node.value)
    return None


def _finding(
    rule_id: str, message: str, path: str, node: ast.AST
) -> Finding:
    lineno = getattr(node, "lineno", 0)
    return Finding(
        rule_id=rule_id,
        severity=Severity.ERROR,
        message=message,
        location=f"{path}:{lineno}",
        details={"line": lineno},
    )


def _check_rep001(tree: ast.AST, path: str) -> Iterator[Finding]:
    """REP001 — unseeded RNG construction."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _terminal_name(node.func)
        if name in ("default_rng", "Random") and not node.args and not node.keywords:
            yield _finding(
                "REP001",
                f"{name}() constructed without a seed; sweeps replay cached "
                "plans and hidden RNG state breaks replay",
                path, node,
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "random"
            and node.func.attr in _GLOBAL_RANDOM_FNS
        ):
            yield _finding(
                "REP001",
                f"random.{node.func.attr}() uses the interpreter-global RNG; "
                "construct a seeded Random/Generator instead",
                path, node,
            )


def _check_rep002(tree: ast.AST, path: str) -> Iterator[Finding]:
    """REP002 — ``==``/``!=`` on timing-named operands."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        ops = node.ops
        for op, left, right in zip(ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            # Comparisons against 0/None are identity-style guards, not
            # float-equality hazards.
            if any(
                isinstance(side, ast.Constant) and side.value in (None, 0)
                for side in (left, right)
            ):
                continue
            for side in (left, right):
                name = _terminal_name(side)
                if name is not None and _TIMING_NAME.search(name):
                    yield _finding(
                        "REP002",
                        f"float equality on timing quantity {name!r}; compare "
                        "with a tolerance (math.isclose) or restructure",
                        path, node,
                    )
                    break


def _looks_like_exception(class_def: ast.ClassDef) -> bool:
    for base in class_def.bases:
        name = _terminal_name(base)
        if name and (
            name.endswith("Error") or name.endswith("Exception")
            or name in ("BaseException", "Warning")
        ):
            return True
    return False


def _check_rep003(tree: ast.AST, path: str) -> Iterator[Finding]:
    """REP003 — custom-``__init__`` exceptions without a pickle hook."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or not _looks_like_exception(node):
            continue
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "__init__" in methods and not (methods & _PICKLE_HOOKS):
            yield _finding(
                "REP003",
                f"exception {node.name} defines __init__ but no "
                "__reduce__/__getstate__/__setstate__; it may not survive "
                "pickling through sweep workers",
                path, node,
            )


def _check_rep005(tree: ast.AST, path: str) -> Iterator[Finding]:
    """REP005 — unregistered literal trace categories."""
    from difflib import get_close_matches

    from repro.sim.trace import TRACE_EVENTS

    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
            and len(node.args) >= 2
        ):
            continue
        category = node.args[1]
        if (
            isinstance(category, ast.Constant)
            and isinstance(category.value, str)
            and category.value not in TRACE_EVENTS
        ):
            message = (
                f"trace category {category.value!r} is not registered in "
                "repro.sim.trace.TRACE_EVENTS"
            )
            close = get_close_matches(category.value, sorted(TRACE_EVENTS), n=1)
            if close:
                message += f" (did you mean {close[0]!r}?)"
            yield _finding("REP005", message, path, node)


def _iterates_transfers(node: ast.expr) -> bool:
    """Whether an iterated expression references a ``transfers`` name."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "transfers":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "transfers":
            return True
    return False


def _check_rep006(tree: ast.AST, path: str, lines: list[str]) -> Iterator[Finding]:
    """REP006 — per-transfer statement loops in executor hot paths.

    Comprehensions are allowed (they build a value, not a scalar
    accumulation); only statement-level ``for``/``async for`` over a
    ``transfers`` collection is flagged, and only inside the pricing
    modules listed in :data:`_HOT_PATH_SUFFIXES`.
    """
    norm = str(path).replace("\\", "/")
    if not norm.endswith(_HOT_PATH_SUFFIXES):
        return
    for node in ast.walk(tree):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        if not _iterates_transfers(node.iter):
            continue
        yield _finding(
            "REP006",
            "per-transfer Python loop over step.transfers in an executor "
            "hot path; vectorize over numpy arrays (see payload_times / "
            "np.bincount in the executors) or allowlist with a "
            "'# REP006: <reason>' pragma",
            path, node,
        )


#: Receiver names that denote a plan-cache object (REP007).
_PLAN_CACHE_NAME = re.compile(r"(^|_)plan_?cache$", re.IGNORECASE)

#: The only modules allowed to mutate a plan cache directly (REP007):
#: the cache layers themselves plus the backend lowering seams that
#: populate them. Matched as path suffixes, like :data:`_HOT_PATH_SUFFIXES`.
_PLAN_CACHE_SEAM_SUFFIXES = (
    "repro/backend/plancache.py",
    "repro/service/store.py",
    "repro/optical/network.py",
    "repro/optical/torus.py",
    "repro/electrical/network.py",
    "repro/backend/analytic.py",
)

_PLAN_CACHE_MUTATORS = frozenset({"put", "clear", "resize"})


def _is_plan_cache_receiver(node: ast.expr) -> bool:
    """Whether an expression names a plan-cache object.

    Covers ``plan_cache`` / ``self.plan_cache`` / ``self._plan_cache``
    name chains and ``default_plan_cache()`` call results.
    """
    name = _terminal_name(node)
    if name is None:
        return False
    if isinstance(node, ast.Call):
        return name == "default_plan_cache"
    return bool(_PLAN_CACHE_NAME.search(name))


def _check_rep007(tree: ast.AST, path: str, lines: list[str]) -> Iterator[Finding]:
    """REP007 — direct plan-cache mutation outside the sanctioned seams.

    The persistent plan store only observes writes that flow through the
    ``plan_cache`` seam (:class:`~repro.service.store.PersistentPlanCache`
    overrides ``put``); ad-hoc mutation elsewhere silently diverges the
    in-memory and on-disk views. Reads (``get``) are unrestricted.
    """
    norm = str(path).replace("\\", "/")
    if norm.endswith(_PLAN_CACHE_SEAM_SUFFIXES):
        return
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _PLAN_CACHE_MUTATORS
        ):
            continue
        if not _is_plan_cache_receiver(node.func.value):
            continue
        yield _finding(
            "REP007",
            f"direct plan-cache .{node.func.attr}() outside "
            "repro.backend.plancache / repro.service.store / the lowering "
            "seams; route writes through the plan_cache seam (or allowlist "
            "with a '# REP007: <reason>' pragma)",
            path, node,
        )


def _check_rep008(tree: ast.AST, path: str, lines: list[str]) -> Iterator[Finding]:
    """REP008 — pragma-shaped comments carrying no reason.

    A suppression without a reason is indistinguishable from a stale
    copy-paste; the reason is the audit record. Bare pragmas never
    suppress (see :func:`pragma_suppresses`) *and* are flagged here.
    """
    for index, line in enumerate(lines):
        found = pragma_at(line)
        if found is None or found[1]:
            continue
        rule_id = found[0]
        yield _finding(
            "REP008",
            f"bare {rule_id} pragma (no reason); a suppression must read "
            f"'# {rule_id}: <reason>' and without the reason it suppresses "
            "nothing",
            path,
            type("N", (), {"lineno": index + 1})(),
        )


_CHECKERS: dict[str, Callable[[ast.AST, str, list[str]], Iterator[Finding]]] = {
    "REP001": lambda tree, path, lines: _check_rep001(tree, path),
    "REP002": lambda tree, path, lines: _check_rep002(tree, path),
    "REP003": lambda tree, path, lines: _check_rep003(tree, path),
    "REP005": lambda tree, path, lines: _check_rep005(tree, path),
    "REP006": _check_rep006,
    "REP007": _check_rep007,
    "REP008": _check_rep008,
}


def apply_pragmas(findings: list[Finding], lines: list[str]) -> list[Finding]:
    """Drop findings covered by a reasoned pragma (shared escape hatch).

    Used by both this lint pass and the flow analyzer
    (:mod:`repro.check.flow`) so every REP/CONC/DET rule honours the same
    ``# <RULEID>: <reason>`` convention. REP008 findings are exempt: a
    pragma cannot excuse its own missing reason.
    """
    kept: list[Finding] = []
    for finding in findings:
        lineno = finding.details.get("line", 0)
        if finding.rule_id != "REP008" and pragma_suppresses(
            finding.rule_id, lines, lineno
        ):
            continue
        kept.append(finding)
    return kept


def lint_source(
    source: str, path: str = "<string>", select: set[str] | None = None
) -> list[Finding]:
    """Lint one source string; returns findings sorted by line.

    Unparseable source yields a single ``SYNTAX`` finding (regardless of
    ``select`` — no rule can run on such a file). Findings covered by a
    reasoned ``# <RULEID>: <reason>`` pragma are dropped.

    Args:
        source: Python source text.
        path: Display path used in finding locations.
        select: Restrict to these rule ids (default: all).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [syntax_finding(exc, path)]
    lines = source.splitlines()
    findings: list[Finding] = []
    for rule_id, checker in _CHECKERS.items():
        if select is not None and rule_id not in select:
            continue
        findings.extend(checker(tree, path, lines))
    findings = apply_pragmas(findings, lines)
    findings.sort(key=lambda f: (f.details.get("line", 0), f.rule_id))
    return findings


def lint_paths(
    paths: list[Path], select: set[str] | None = None
) -> list[Finding]:
    """Lint files and directories (``.py`` files, recursively)."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: list[Finding] = []
    for file in files:
        findings.extend(
            lint_source(file.read_text(), path=str(file), select=select)
        )
    return findings


def main(argv: list[str] | None = None) -> int:
    """CLI: lint the given paths, print findings, exit 1 on any."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.check.lint",
        description="Reproduction-specific AST lint (REP001-REP008).",
    )
    parser.add_argument("paths", nargs="*", type=Path, help="files or directories")
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule_id, title in sorted(LINT_RULES.items()):
            print(f"{rule_id}  {title}")
        return 0
    if not args.paths:
        parser.error("no paths given")
    select = set(args.select.split(",")) if args.select else None
    if select is not None:
        unknown = select - set(LINT_RULES)
        if unknown:
            parser.error(f"unknown rule ids: {sorted(unknown)}")
    findings = lint_paths(args.paths, select=select)
    for finding in findings:
        print(finding.render())
    print(f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
