"""Static analysis for the reproduction: plan verifier + AST lint + flow rules.

Three subsystems share this package:

- the **plan verifier** (:mod:`repro.check.engine`,
  :mod:`repro.check.plan_rules`) proves properties of a lowered plan
  without executing it — wavelength exclusivity, port budgets, dataflow
  conservation, closed-form step counts, phy feasibility;
- the **lint pass** (:mod:`repro.check.lint`) walks the repo's own source
  with :mod:`ast` for reproduction-specific hazards (REP001–REP008);
- the **flow pass** (:mod:`repro.check.flow`, on the call graph of
  :mod:`repro.check.callgraph` and the effect lattices of
  :mod:`repro.check.effects`) checks interprocedural async-safety and
  determinism contracts (CONC001–CONC005, DET001–DET004), with SARIF
  output via :mod:`repro.check.sarif`.

Entry points::

    from repro.check import verify_plan, optical_context
    findings = verify_plan(context=optical_context(backend, schedule))

    from repro.check import analyze_paths
    findings = analyze_paths(["src"])

    $ python -m repro.check.lint src
    $ python -m repro.check flow src --sarif flow.sarif.json
    $ wrht-repro check --backend optical --fig fig5

This ``__init__`` stays import-light on purpose: :mod:`repro.collectives.base`
and :mod:`repro.optical.circuit` import the dependency-free
:mod:`repro.check.intervals` engine at module level, so eagerly importing
the rule modules here (which import ``collectives``/``optical`` back) would
cycle. Heavy names are provided lazily via PEP 562 ``__getattr__``.
"""

from __future__ import annotations

from repro.check.findings import (
    Finding,
    Severity,
    errors,
    has_errors,
    render_findings,
)
from repro.check.intervals import Claim, Conflict, IntervalSetMap, find_conflicts

__all__ = [
    "CheckContext",
    "Claim",
    "Conflict",
    "FLOW_RULES",
    "Finding",
    "IntervalSetMap",
    "PlanVerificationError",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_paths",
    "errors",
    "find_conflicts",
    "get_rule",
    "has_errors",
    "optical_context",
    "register_rule",
    "render_findings",
    "run_rules",
    "to_sarif",
    "verify_plan",
]

_LAZY = {
    "CheckContext": "repro.check.context",
    "optical_context": "repro.check.context",
    "PlanVerificationError": "repro.check.engine",
    "Rule": "repro.check.engine",
    "all_rules": "repro.check.engine",
    "get_rule": "repro.check.engine",
    "register_rule": "repro.check.engine",
    "run_rules": "repro.check.engine",
    "verify_plan": "repro.check.engine",
    "FLOW_RULES": "repro.check.flow",
    "analyze_paths": "repro.check.flow",
    "to_sarif": "repro.check.sarif",
}


def __getattr__(name: str):
    """Lazily resolve the engine/context names (PEP 562).

    Importing them eagerly would cycle through ``repro.collectives.base``,
    which itself imports :mod:`repro.check.intervals`.
    """
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value
