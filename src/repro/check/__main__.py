"""``python -m repro.check`` — dispatch to the static-verification CLI."""

import sys

from repro.check.cli import main

if __name__ == "__main__":
    sys.exit(main())
