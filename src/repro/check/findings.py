"""Structured findings: what every static check emits.

A :class:`Finding` is one diagnostic produced by a rule — plan verifier or
AST lint — identified by a stable ``rule_id`` (``PLAN***`` for schedule/plan
rules, ``REP***`` for lint rules), carrying a :class:`Severity`, a free-form
message, and enough location data to act on it (profile-entry index for plan
rules, ``path:line:col`` for lint rules). Findings are plain serializable
data so CLI output, pytest assertions and CI logs all render the same
records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail verification (CI gates on them); ``WARNING``
    findings are reported but do not fail; ``INFO`` findings record that a
    rule was skipped or observed something noteworthy.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a static-analysis rule.

    Attributes:
        rule_id: Stable identifier (``"PLAN001"``, ``"REP004"``, ...).
        severity: :class:`Severity` of the finding.
        message: Human-readable description of the defect.
        step_index: Index of the offending timing-profile entry (plan
            rules), or ``None`` when not step-specific.
        location: ``path:line:col`` source location (lint rules), or
            ``None``.
        details: Rule-specific structured extras (JSON-safe values only).
    """

    rule_id: str
    severity: Severity
    message: str
    step_index: int | None = None
    location: str | None = None
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-dict view (JSON-ready)."""
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "step_index": self.step_index,
            "location": self.location,
            "details": dict(self.details),
        }

    def render(self) -> str:
        """One-line human-readable form (CLI / assertion messages)."""
        where = ""
        if self.location is not None:
            where = f"{self.location}: "
        elif self.step_index is not None:
            where = f"step {self.step_index}: "
        return f"[{self.rule_id}:{self.severity}] {where}{self.message}"


def errors(findings: list[Finding]) -> list[Finding]:
    """The ``ERROR``-severity subset of ``findings``."""
    return [f for f in findings if f.severity is Severity.ERROR]


def has_errors(findings: list[Finding]) -> bool:
    """Whether any finding is an ``ERROR``."""
    return any(f.severity is Severity.ERROR for f in findings)


def render_findings(findings: list[Finding]) -> str:
    """Multi-line rendering of a finding list (empty string when clean)."""
    return "\n".join(f.render() for f in findings)
