"""Call-graph-aware concurrency & determinism rules (CONC001–DET004).

PR 7 split planning into an asyncio daemon, a forked on-disk store and
multiprocess sweep workers. The hazards that surface breeds — blocking
calls in coroutines, shared-state races around ``await``, hidden
nondeterminism leaking into plan identities — are *path* properties: a
``time.sleep`` three calls below an ``async def`` is just as blocking as
one written inline, and a wall-clock read is harmless until some chain of
returns lands it in a cache key. The REP lint cannot see either; these
rules walk the :mod:`repro.check.callgraph` graph and the
:mod:`repro.check.effects` lattices instead.

========  =============================================================
CONC001   Blocking call (sync sleep/subprocess/socket/disk I/O, or a
          sync callee that transitively performs one) inside an
          ``async def`` body. Blocks the event loop: the daemon stops
          accepting, coalescing and answering while it runs.
CONC002   Shared-state hazard: (a) an instance attribute read into a
          local before an ``await`` and written back from that stale
          local after it (lost update across the yield point); (b) a
          function dispatched to an executor thread (``run_in_executor``
          / ``submit`` / ``to_thread``) mutating instance state that the
          class's ``async`` methods also touch — mutation off the
          single-worker eval lane.
CONC003   Coroutine called as a bare statement: the coroutine object is
          created and dropped, the body never runs (or runs "sometime",
          unsupervised). Await it or hand it to ``create_task``.
CONC004   A class caches ``os.getpid()`` at construction and exposes a
          re-check method (the fork re-keying protocol of
          ``repro.service.store``), but a public method uses the cached
          identity without calling the re-check — a forked child would
          silently act under its parent's identity.
CONC005   A write to a store shard path without ``os.replace`` in the
          same function: readers can observe the partial file. Shard
          persistence must be write-to-temp + atomic rename.
DET001    A wall-clock value (``time.time``/``perf_counter``/
          ``datetime.now`` — possibly returned through any chain of
          helpers) flows into a plan/cache identity: a ``LoweredPlan``
          construction, a plan-cache ``.put`` key, the fingerprint/
          digest/salt helpers, or a ``*key*``-named function's return.
DET002    Iteration over a ``set``/``frozenset`` inside code reachable
          from a lowering entry point (``lower``/``plan_step_rounds``):
          set order varies with PYTHONHASHSEED, so anything it feeds —
          plan structure, RWA coloring order — silently loses
          bit-reproducibility. Iterate ``sorted(...)`` instead.
DET003    An unseeded RNG (interprocedurally) reachable from ``lower``:
          the REP001 contract upgraded from lexical to call-graph
          reachability.
DET004    ``id(...)``/``hash(...)`` flowing into a key identity:
          ``id`` is an address, ``hash`` of a str is salted per process
          — neither survives a process boundary or a replay.
========  =============================================================

Every rule honours the shared ``# <RULEID>: <reason>`` pragma
(:func:`repro.check.lint.pragma_suppresses`) on the offending line or the
comment block above it. Run via ``python -m repro.check flow src``
(``--sarif`` emits a SARIF 2.1.0 report for CI annotation).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.check.callgraph import (
    CallGraph,
    FunctionInfo,
    build_callgraph,
    load_files,
)
from repro.check.effects import (
    BLOCKING,
    RNG,
    WALLCLOCK,
    WALLCLOCK_EXTERNALS,
    WALLCLOCK_TERMINALS,
    EffectReport,
    _expr_tainted,
    _is_key_named,
    _sink_args_of_call,
    _site_map,
    key_sink_params,
    propagate_effects,
    site_base_effects,
    tainted_locals_of,
    tainted_returners,
)
from repro.check.findings import Finding, Severity
from repro.check.lint import pragma_suppresses

FLOW_RULES: dict[str, str] = {
    "CONC001": "blocking call reachable from an async def",
    "CONC002": "shared-state mutation off the eval lane or across an await",
    "CONC003": "coroutine called but never awaited",
    "CONC004": "cached process identity used without a fork re-check",
    "CONC005": "non-atomic write to a store shard path",
    "DET001": "wall-clock value flows into a plan/cache identity",
    "DET002": "set iteration on a lowering path",
    "DET003": "unseeded RNG reachable from a lowering entry point",
    "DET004": "id()/hash() flows into a cross-process identity",
}
"""Rule id -> short title (CLI ``--list-rules``, SARIF rule metadata)."""

#: Entry points whose down-closure is "the lowering path" (DET002/DET003).
LOWERING_ENTRY_NAMES = frozenset({"lower", "plan_step_rounds"})

#: Call terminals that dispatch a function reference onto a worker thread.
_EXECUTOR_TERMINALS = frozenset({"run_in_executor", "submit", "to_thread"})

#: Sources for the DET004 taint (bare-name builtins only).
_IDENTITY_SOURCES = frozenset({"id", "hash"})


def _finding(rule_id: str, message: str, path: str, lineno: int, **details) -> Finding:
    return Finding(
        rule_id=rule_id,
        severity=Severity.ERROR,
        message=message,
        location=f"{path}:{lineno}",
        details={"line": lineno, **details},
    )


def _fmt_chain(chain: list[str]) -> str:
    return " -> ".join(part.split(":", 1)[-1] for part in chain)


# -- CONC001 ------------------------------------------------------------


def _check_conc001(graph: CallGraph, report: EffectReport) -> Iterator[Finding]:
    for fn in graph.async_functions():
        for site in graph.sites(fn.qualname):
            base = site_base_effects(site)
            if BLOCKING in base:
                what = site.external or site.terminal
                yield _finding(
                    "CONC001",
                    f"blocking call {what}() inside async def {fn.name}; "
                    "the event loop stalls for its full duration — move it "
                    "behind run_in_executor (the daemon's eval lane)",
                    site.path, site.lineno,
                    function=fn.qualname,
                )
            elif (
                site.callee is not None
                and not graph.functions[site.callee].is_async
                and report.has(site.callee, BLOCKING)
            ):
                chain = [fn.qualname, *report.chain(site.callee, BLOCKING)]
                yield _finding(
                    "CONC001",
                    f"call to {graph.functions[site.callee].name}() inside "
                    f"async def {fn.name} transitively blocks "
                    f"({_fmt_chain(chain)}); move the chain behind "
                    "run_in_executor",
                    site.path, site.lineno,
                    function=fn.qualname, chain=_fmt_chain(chain),
                )


# -- CONC002 ------------------------------------------------------------


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _check_conc002_await_window(fn: FunctionInfo) -> Iterator[Finding]:
    """(a) stale read-modify-write windows crossing an ``await``."""
    await_lines = sorted(
        n.lineno for n in ast.walk(fn.node) if isinstance(n, ast.Await)
    )
    if not await_lines:
        return
    carriers: dict[str, tuple[str, int]] = {}  # local -> (attr, read line)
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if isinstance(target, ast.Name):
            for sub in ast.walk(node.value):
                attr = _self_attr(sub)
                if attr is not None:
                    carriers[target.id] = (attr, node.lineno)
                    break
    if not carriers:
        return
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        attr = _self_attr(target)
        if attr is None:
            continue
        for name in {
            n.id for n in ast.walk(node.value) if isinstance(n, ast.Name)
        }:
            carried = carriers.get(name)
            if carried is None or carried[0] != attr:
                continue
            read_line = carried[1]
            if any(read_line < aw < node.lineno for aw in await_lines):
                yield _finding(
                    "CONC002",
                    f"self.{attr} read into {name!r} at line {read_line}, "
                    f"awaited, then written back from the stale local at "
                    f"line {node.lineno}: concurrent handlers interleave at "
                    "the await and this write loses their updates; "
                    "re-read after the await or restructure to += on the "
                    "loop",
                    fn.path, node.lineno,
                    function=fn.qualname, attr=attr,
                )


def _same_class_closure(
    graph: CallGraph, class_key: str, roots: set[str]
) -> set[str]:
    method_quals = {f.qualname for f in graph.class_methods(class_key)}
    closure = set()
    stack = [q for q in roots if q in method_quals]
    while stack:
        current = stack.pop()
        if current in closure:
            continue
        closure.add(current)
        stack.extend(q for q in graph.callees(current) if q in method_quals)
    return closure


def _check_conc002_off_loop(graph: CallGraph) -> Iterator[Finding]:
    """(b) executor-dispatched functions mutating loop-shared state."""
    for class_key in graph.classes:
        methods = graph.class_methods(class_key)
        async_methods = [m for m in methods if m.is_async]
        if not async_methods:
            continue
        shared: set[str] = set()
        for method in async_methods:
            for node in ast.walk(method.node):
                attr = _self_attr(node)
                if attr is not None:
                    shared.add(attr)
        if not shared:
            continue
        dispatched: set[str] = set()
        for method in methods:
            for site in graph.sites(method.qualname):
                if site.terminal not in _EXECUTOR_TERMINALS:
                    continue
                for arg in site.node.args:
                    attr = _self_attr(arg)
                    if attr is not None:
                        target = graph.method_of(class_key, attr)
                        if target is not None:
                            dispatched.add(target)
        for qual in sorted(_same_class_closure(graph, class_key, dispatched)):
            fn = graph.functions[qual]
            for node in ast.walk(fn.node):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None and attr in shared:
                        yield _finding(
                            "CONC002",
                            f"{fn.name}() runs on the executor thread (it is "
                            "dispatched via run_in_executor/submit) but "
                            f"mutates self.{attr}, which the class's async "
                            "methods also touch on the event loop — "
                            "shared state must only change on the "
                            "single-worker eval lane's loop side",
                            fn.path, node.lineno,
                            function=fn.qualname, attr=attr,
                        )


# -- CONC003 ------------------------------------------------------------


def _check_conc003(graph: CallGraph) -> Iterator[Finding]:
    for fn in graph.functions.values():
        site_map = _site_map(graph, fn.qualname)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Expr) or not isinstance(
                node.value, ast.Call
            ):
                continue
            site = site_map.get(id(node.value))
            if site is None or site.callee is None:
                continue
            callee = graph.functions.get(site.callee)
            if callee is None or not callee.is_async:
                continue
            yield _finding(
                "CONC003",
                f"{callee.name}() is a coroutine but the call is a bare "
                "statement: the coroutine object is created and dropped "
                "without ever running — await it or wrap it in "
                "asyncio.create_task",
                site.path, site.lineno,
                function=fn.qualname, coroutine=site.callee,
            )


# -- CONC004 ------------------------------------------------------------


def _reads_attr(node: ast.AST, attrs: set[str]) -> bool:
    for sub in ast.walk(node):
        attr = _self_attr(sub)
        if attr in attrs and isinstance(sub.ctx, ast.Load):
            return True
    return False


def _check_conc004(graph: CallGraph) -> Iterator[Finding]:
    for class_key, info in graph.classes.items():
        init = info.methods.get("__init__")
        if init is None:
            continue
        pid_attrs: set[str] = set()
        for node in ast.walk(graph.functions[init].node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                attr = _self_attr(node.targets[0])
                if attr is None:
                    continue
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Call) and ast.unparse(
                        sub.func
                    ).endswith("getpid"):
                        pid_attrs.add(attr)
        if not pid_attrs:
            continue
        rechecks: set[str] = set()
        for method in graph.class_methods(class_key):
            if method.qualname == init:
                continue
            stores_pid = any(
                _self_attr(t) in pid_attrs
                for n in ast.walk(method.node)
                if isinstance(n, ast.Assign)
                for t in n.targets
            )
            calls_getpid = any(
                site.external == "os.getpid" or site.terminal == "getpid"
                for site in graph.sites(method.qualname)
            )
            if stores_pid and calls_getpid:
                rechecks.add(method.qualname)
        if not rechecks:
            continue
        for method in graph.class_methods(class_key):
            if method.qualname == init or method.qualname in rechecks:
                continue
            if method.name.startswith("_") and not method.name.startswith("__"):
                continue  # private helpers: callers own the re-check
            closure = _same_class_closure(graph, class_key, {method.qualname})
            uses_pid = any(
                _reads_attr(graph.functions[q].node, pid_attrs) for q in closure
            )
            if not uses_pid:
                continue
            if closure & rechecks or any(
                graph.callees(q) & rechecks for q in closure
            ):
                continue
            yield _finding(
                "CONC004",
                f"{method.name}() uses the cached process identity "
                f"({', '.join(f'self.{a}' for a in sorted(pid_attrs))}) "
                "without calling the fork re-check "
                f"({', '.join(sorted(r.split(':')[-1] for r in rechecks))}); "
                "a forked child would silently write under its parent's "
                "identity",
                method.path, method.lineno,
                function=method.qualname,
            )


# -- CONC005 ------------------------------------------------------------


def _shardish(expr: ast.expr, caller_node: ast.AST | None) -> bool:
    """Whether ``expr`` denotes a shard path, seeing through one local."""
    if "shard" in ast.unparse(expr).lower():
        return True
    if isinstance(expr, ast.Name) and caller_node is not None:
        for node in _own_nodes(caller_node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and target.id == expr.id
                    and "shard" in ast.unparse(node.value).lower()
                ):
                    return True
    return False


def _check_conc005(graph: CallGraph) -> Iterator[Finding]:
    for caller, sites in graph.calls.items():
        caller_fn = graph.functions.get(caller)
        caller_node = caller_fn.node if caller_fn is not None else None
        has_replace = any(s.external == "os.replace" for s in sites)
        for site in sites:
            target: ast.expr | None = None
            if site.terminal in ("write_bytes", "write_text") and isinstance(
                site.node.func, ast.Attribute
            ):
                target = site.node.func.value
            elif site.terminal == "open" and site.node.args:
                mode = ""
                if len(site.node.args) > 1 and isinstance(
                    site.node.args[1], ast.Constant
                ):
                    mode = str(site.node.args[1].value)
                for kw in site.node.keywords:
                    if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                        mode = str(kw.value.value)
                if not any(c in mode for c in "wax"):
                    continue
                target = site.node.args[0]
            if target is None or not _shardish(target, caller_node):
                continue
            if has_replace:
                continue
            yield _finding(
                "CONC005",
                f"direct write to shard path {ast.unparse(target)!r} with no "
                "os.replace in the same function: a concurrent reader can "
                "observe the partial file — write to a temp name and "
                "os.replace() it into place",
                site.path, site.lineno,
                function=caller,
            )


# -- DET001 / DET004 ----------------------------------------------------


def _own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s body without descending into nested function defs."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


def _check_taint_to_keys(
    graph: CallGraph,
    rule_id: str,
    sources: frozenset[str],
    source_terminals: frozenset[str],
    what: str,
) -> Iterator[Finding]:
    returners = tainted_returners(graph, sources, source_terminals)
    sinks = key_sink_params(graph)
    for fn in graph.functions.values():
        site_map = _site_map(graph, fn.qualname)
        locals_ = tainted_locals_of(
            graph, fn.qualname, sources, source_terminals, returners
        )

        def tainted(expr: ast.expr) -> bool:
            return _expr_tainted(
                expr, site_map, sources, source_terminals, returners, locals_
            )

        for site in graph.sites(fn.qualname):
            for arg in _sink_args_of_call(site, sinks, graph):
                if tainted(arg):
                    yield _finding(
                        rule_id,
                        f"{what} flows into the plan/cache identity built "
                        f"by {site.terminal}() (argument "
                        f"{ast.unparse(arg)!r}); identities must depend "
                        "only on the simulated configuration or they break "
                        "replay and cross-process sharing",
                        site.path, site.lineno,
                        function=fn.qualname,
                    )
        if _is_key_named(fn.name):
            for node in _own_nodes(fn.node):
                if (
                    isinstance(node, ast.Return)
                    and node.value is not None
                    and tainted(node.value)
                ):
                    yield _finding(
                        rule_id,
                        f"{what} reaches the value returned by the "
                        f"key-building function {fn.name}()",
                        fn.path, node.lineno,
                        function=fn.qualname,
                    )


# -- DET002 / DET003 ----------------------------------------------------


def _lowering_closure(graph: CallGraph) -> set[str]:
    """Every function reachable from a lowering entry point."""
    roots = [
        q for q, fn in graph.functions.items()
        if fn.name in LOWERING_ENTRY_NAMES
    ]
    closure: set[str] = set()
    stack = list(roots)
    while stack:
        current = stack.pop()
        if current in closure:
            continue
        closure.add(current)
        stack.extend(graph.callees(current))
    return closure


def _setish_vars(fn: FunctionInfo) -> set[str]:
    setish: set[str] = set()
    for _ in range(2):
        before = len(setish)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _is_setish(
                    node.value, setish
                ):
                    setish.add(target.id)
        if len(setish) == before:
            break
    return setish


def _is_setish(node: ast.expr, setish_vars: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in setish_vars
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in (
            "union", "intersection", "difference", "symmetric_difference"
        ):
            return _is_setish(node.func.value, setish_vars)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub)
    ):
        return _is_setish(node.left, setish_vars) or _is_setish(
            node.right, setish_vars
        )
    return False


def _check_det002(graph: CallGraph) -> Iterator[Finding]:
    closure = _lowering_closure(graph)
    for qual in sorted(closure):
        fn = graph.functions.get(qual)
        if fn is None:
            continue
        setish = _setish_vars(fn)
        iters: list[ast.expr] = []
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
        for expr in iters:
            if _is_setish(expr, setish):
                yield _finding(
                    "DET002",
                    f"iteration over a set ({ast.unparse(expr)!r}) inside "
                    f"{fn.name}(), which is on the lowering path: set order "
                    "varies with PYTHONHASHSEED, so downstream plan/RWA "
                    "state loses bit-reproducibility — iterate "
                    "sorted(...) instead",
                    fn.path, expr.lineno,
                    function=fn.qualname,
                )


def _check_det003(graph: CallGraph, report: EffectReport) -> Iterator[Finding]:
    for qual, fn in graph.functions.items():
        if fn.name not in LOWERING_ENTRY_NAMES:
            continue
        if report.has(qual, RNG):
            chain = report.chain(qual, RNG)
            yield _finding(
                "DET003",
                f"an unseeded RNG is reachable from {fn.name}() "
                f"({_fmt_chain(chain)}); lowering must be a pure function "
                "of the configuration — plumb a seeded generator through "
                "(interprocedural REP001)",
                fn.path, fn.lineno,
                function=qual, chain=_fmt_chain(chain),
            )


# -- driver -------------------------------------------------------------


def analyze_files(
    files: list[tuple[str, str]], select: set[str] | None = None
) -> list[Finding]:
    """Run the flow rules over ``(path, source)`` pairs.

    Returns findings sorted by (path, line, rule id), with reasoned
    ``# <RULEID>: <reason>`` pragmas already applied. Unparseable files
    contribute a ``SYNTAX`` finding each.
    """
    graph, findings = build_callgraph(files)
    report = propagate_effects(graph)
    checks: dict[str, Iterator[Finding]] = {
        "CONC001": _check_conc001(graph, report),
        "CONC002": iter(
            [
                *(
                    f
                    for fn in graph.async_functions()
                    for f in _check_conc002_await_window(fn)
                ),
                *_check_conc002_off_loop(graph),
            ]
        ),
        "CONC003": _check_conc003(graph),
        "CONC004": _check_conc004(graph),
        "CONC005": _check_conc005(graph),
        "DET001": _check_taint_to_keys(
            graph, "DET001", WALLCLOCK_EXTERNALS, WALLCLOCK_TERMINALS,
            "a wall-clock value",
        ),
        "DET002": _check_det002(graph),
        "DET003": _check_det003(graph, report),
        "DET004": _check_taint_to_keys(
            graph, "DET004", _IDENTITY_SOURCES, frozenset(),
            "an id()/hash() process-local identity",
        ),
    }
    for rule_id, produced in checks.items():
        if select is not None and rule_id not in select:
            continue
        findings.extend(produced)
    lines_by_path = {path: source.splitlines() for path, source in files}
    kept = [
        f
        for f in findings
        if not pragma_suppresses(
            f.rule_id,
            lines_by_path.get((f.location or ":").rsplit(":", 1)[0], []),
            f.details.get("line", 0),
        )
    ]
    kept.sort(key=lambda f: (f.location or "", f.details.get("line", 0), f.rule_id))
    return kept


def analyze_paths(
    paths: list[str | Path], select: set[str] | None = None
) -> list[Finding]:
    """Run the flow rules over files and directories (recursively)."""
    return analyze_files(load_files(paths), select=select)
