"""Pytest plugin: statically verify every plan the test suite lowers.

Loaded from ``tests/conftest.py`` (``pytest_plugins``). It wraps the three
``lower()`` seams — the optical ring network, the electrical network, and
the analytic backend — so that *every* lowered plan produced anywhere in
the suite is run through the structural plan rules (PLAN000 structure,
PLAN004 step-count conformance, PLAN005 feasibility) with the source
schedule attached. A plan that fails raises
:class:`~repro.check.engine.PlanVerificationError` inside the test that
lowered it, turning every existing lowering test into a verification test
for free.

Only structural rules run here: the circuit-level rules would re-run RWA
(perturbing ``random_fit`` RNG streams and doubling suite cost), and the
dataflow rule assumes complete All-reduce schedules while many fixtures
lower deliberately partial synthetic ones. The full catalog runs in the
dedicated ``tests/check`` suite and the ``wrht-repro check`` CLI.

Opt out for a run with ``pytest --no-plan-verify``. Opt *in* to the
call-graph flow rules (CONC/DET, see :mod:`repro.check.flow`) with
``pytest --flow-check``: the whole ``src`` tree is analyzed once at
session start and any finding fails the session before tests run (the
same gate ``scripts/check.sh`` applies; the option exists so a plain
pytest invocation can reproduce it).
"""

from __future__ import annotations

import pytest

#: Rules safe to run on every lowered plan, including synthetic fixtures.
STRUCTURAL_RULES = ("PLAN000", "PLAN004", "PLAN005")

_COUNTS = {"verified": 0}
_ORIGINALS: list[tuple[type, object]] = []


def _verified_lower(cls) -> None:
    original = cls.lower
    _ORIGINALS.append((cls, original))

    def lower(self, schedule, *args, **kwargs):
        from repro.check.engine import verify_plan

        plan = original(self, schedule, *args, **kwargs)
        verify_plan(
            plan,
            schedule,
            rule_ids=STRUCTURAL_RULES,
            raise_on_error=True,
        )
        _COUNTS["verified"] += 1
        return plan

    lower.__doc__ = original.__doc__
    lower.__wrapped__ = original
    cls.lower = lower


def pytest_addoption(parser: pytest.Parser) -> None:
    """Register ``--no-plan-verify`` and ``--flow-check``."""
    parser.addoption(
        "--no-plan-verify",
        action="store_true",
        default=False,
        help="skip static verification of lowered plans",
    )
    parser.addoption(
        "--flow-check",
        action="store_true",
        default=False,
        help="run the CONC/DET flow rules over src before the session",
    )


def pytest_configure(config: pytest.Config) -> None:
    """Install the verifying wrappers around the ``lower()`` seams."""
    if config.getoption("--flow-check"):
        from repro.check.findings import render_findings
        from repro.check.flow import analyze_paths

        findings = analyze_paths([str(config.rootpath / "src")])
        if findings:
            raise pytest.UsageError(
                "flow check failed:\n" + render_findings(findings)
            )
    if config.getoption("--no-plan-verify"):
        return
    from repro.backend.analytic import AnalyticBackend
    from repro.electrical.network import ElectricalNetwork
    from repro.optical.network import OpticalRingNetwork

    for cls in (OpticalRingNetwork, ElectricalNetwork, AnalyticBackend):
        _verified_lower(cls)


def pytest_unconfigure(config: pytest.Config) -> None:
    """Restore the original ``lower()`` implementations."""
    while _ORIGINALS:
        cls, original = _ORIGINALS.pop()
        cls.lower = original


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    """Report how many lowered plans were statically verified."""
    if _COUNTS["verified"]:
        terminalreporter.write_line(
            f"repro.check: statically verified {_COUNTS['verified']} "
            "lowered plan(s)"
        )
