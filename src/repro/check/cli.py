"""``wrht-repro check`` / ``python -m repro.check`` — static verification CLI.

Two subcommands:

``check``
    Build every golden plan of one figure's grid (the same algorithm ×
    size × wavelength cells the experiment runners price), lower each on
    the chosen backend, and run the full applicable rule catalog. On the
    optical backend the context includes statically re-derived circuit
    rounds, so the wavelength-conflict and port-budget rules run too.
    Exit status 1 on any ERROR finding.

``lint``
    The REP001–REP008 AST pass (same as ``python -m repro.check.lint``).

``flow``
    The call-graph-aware concurrency/determinism pass
    (CONC001–CONC005, DET001–DET004; see :mod:`repro.check.flow`).
    ``--sarif out.json`` additionally writes a SARIF 2.1.0 report for CI
    annotation. Exit status 1 on any ERROR finding.

Golden plans use the figures' real communication geometry with a compact
gradient vector: routing, wavelength assignment and step structure depend
only on the (algorithm, N, w) pattern, not on payload bytes, so the
verification verdict is identical to paper-scale workloads at a fraction
of the cost.

Examples::

    $ wrht-repro check --backend optical --fig fig5
    $ python -m repro.check check --fig fig6 --backend analytic
    $ python -m repro.check lint src
    $ python -m repro.check flow src --sarif flow.sarif.json
"""

from __future__ import annotations

import argparse
import sys

from repro.check.findings import Finding, errors


def golden_cells(fig: str) -> list[dict]:
    """The (algorithm, N, w) grid one figure prices, as cell dicts.

    Mirrors the cell enumeration in :mod:`repro.runner.experiments`
    (Fig 7's E-Ring column prices the Ring schedule on the electrical
    substrate, so it only appears for ``--backend electrical``).
    """
    from repro.core.wavelengths import optimal_group_size
    from repro.runner.experiments import (
        DEFAULT_WAVELENGTHS,
        FIG4_GROUP_SIZES,
        FIG5_WAVELENGTHS,
        FIG6_NODES,
        FIG7_NODES,
        HRING_M,
    )

    n0, w0 = 1024, DEFAULT_WAVELENGTHS
    if fig == "fig4":
        return [
            {"algo": "WRHT", "n": n0, "w": w0, "wrht_m": m, "hring_m": HRING_M}
            for m in FIG4_GROUP_SIZES
        ]
    if fig == "fig5":
        return [
            {
                "algo": algo, "n": n0, "w": w,
                "wrht_m": min(optimal_group_size(w), n0), "hring_m": HRING_M,
            }
            for algo in ("Ring", "H-Ring", "BT", "WRHT")
            for w in FIG5_WAVELENGTHS
        ]
    if fig == "fig6":
        return [
            {"algo": algo, "n": n, "w": w0, "wrht_m": None, "hring_m": HRING_M}
            for algo in ("Ring", "H-Ring", "BT", "WRHT")
            for n in FIG6_NODES
        ]
    if fig == "fig7":
        return [
            {"algo": algo, "n": n, "w": w0, "wrht_m": None, "hring_m": HRING_M}
            for algo in ("Ring", "RD", "WRHT")
            for n in FIG7_NODES
        ]
    raise ValueError(f"unknown figure {fig!r}; expected fig4..fig7")


def _verify_cell(cell: dict, backend_name: str, interpretation: str) -> list[Finding]:
    """Build, lower and verify one golden cell; returns its findings."""
    from repro.check.context import optical_context
    from repro.check.engine import run_rules, verify_plan
    from repro.runner.experiments import _build_cell_schedule, get_backend

    class _Elems:
        """Minimal workload stand-in: a compact exact-chunking vector."""

        def __init__(self, n: int) -> None:
            self.n_params = 8 * n
            self.bytes_per_param = 4.0

    backend = get_backend(backend_name, cell["n"], cell["w"], interpretation)
    schedule = _build_cell_schedule(
        cell["algo"], cell["n"], cell["w"], _Elems(cell["n"]),
        wrht_m=cell["wrht_m"], hring_m=cell["hring_m"],
    )
    if backend_name == "optical":
        context = optical_context(backend, schedule)
        return run_rules(context)
    plan = backend.lower(schedule, bytes_per_elem=4.0)
    return verify_plan(plan, schedule)


def cmd_check(args: argparse.Namespace) -> int:
    """Verify every golden plan of the selected figure(s)."""
    figs = [args.fig] if args.fig else ["fig4", "fig5", "fig6", "fig7"]
    n_cells = 0
    bad: list[Finding] = []
    for fig in figs:
        for cell in golden_cells(fig):
            n_cells += 1
            findings = _verify_cell(cell, args.backend, args.interpretation)
            label = f"{fig} {cell['algo']} N={cell['n']} w={cell['w']}"
            cell_errors = errors(findings)
            bad.extend(cell_errors)
            if cell_errors:
                print(f"FAIL {label}")
                for finding in cell_errors:
                    print(f"  {finding.render()}")
            elif args.verbose:
                notes = len(findings) - len(cell_errors)
                suffix = f" ({notes} note(s))" if notes else ""
                print(f"ok   {label}{suffix}")
    status = "clean" if not bad else f"{len(bad)} error finding(s)"
    print(
        f"verified {n_cells} golden plan(s) on the {args.backend} "
        f"backend: {status}"
    )
    return 1 if bad else 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the REP lint pass (delegates to :mod:`repro.check.lint`)."""
    from repro.check.lint import main as lint_main

    argv = [str(p) for p in args.paths]
    if args.select:
        argv += ["--select", args.select]
    return lint_main(argv)


def cmd_flow(args: argparse.Namespace) -> int:
    """Run the call-graph flow rules (CONC/DET families)."""
    from repro.check.flow import FLOW_RULES, analyze_paths
    from repro.check.sarif import write_sarif

    if args.list_rules:
        for rule_id in sorted(FLOW_RULES):
            print(f"{rule_id}  {FLOW_RULES[rule_id]}")
        return 0
    select = None
    if args.select:
        select = {r.strip() for r in args.select.split(",") if r.strip()}
        unknown = select - set(FLOW_RULES)
        if unknown:
            print(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(FLOW_RULES))}",
                file=sys.stderr,
            )
            return 2
    findings = analyze_paths(args.paths, select=select)
    if args.sarif:
        write_sarif(findings, args.sarif, rule_catalog=FLOW_RULES)
    for finding in findings:
        print(finding.render())
    bad = errors(findings)
    scope = ", ".join(sorted(select)) if select else "all flow rules"
    print(
        f"flow: {len(findings)} finding(s), {len(bad)} error(s) ({scope})"
    )
    return 1 if bad else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro.check`` CLI parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Static verification: plan rules and the REP lint pass.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="verify a figure's golden plans")
    p.add_argument(
        "--backend", choices=("optical", "electrical", "analytic"),
        default="optical", help="backend to lower the golden plans on",
    )
    p.add_argument(
        "--fig", choices=("fig4", "fig5", "fig6", "fig7"), default=None,
        help="restrict to one figure (default: all four)",
    )
    p.add_argument(
        "--interpretation", choices=("calibrated", "strict"),
        default="calibrated", help="line-rate units (see DESIGN.md §6)",
    )
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print every verified cell")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("lint", help="run the REP001-REP005 AST lint")
    p.add_argument("paths", nargs="+", help="files or directories to lint")
    p.add_argument("--select", help="comma-separated rule ids")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "flow", help="run the CONC/DET call-graph flow rules"
    )
    p.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    p.add_argument("--select", help="comma-separated CONC/DET rule ids")
    p.add_argument(
        "--sarif", metavar="PATH",
        help="also write a SARIF 2.1.0 report to PATH",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the flow rule catalog and exit",
    )
    p.set_defaults(fn=cmd_flow)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.check`` and the CLI subcommand."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
