"""What a plan-verification run gets to look at.

Rules are pure functions over a :class:`CheckContext`: the lowered plan,
optionally the source schedule, the substrate configuration, and — for the
circuit-level rules — the per-pattern circuit rounds. The context is
deliberately permissive about what is present: a rule declares what it
needs (:attr:`~repro.check.engine.Rule.needs`) and the engine only runs it
when the context can satisfy that, so one ``verify_plan`` entry point
serves the CLI (full optical context), the pytest plugin (plan + schedule,
no circuit re-derivation) and adversarial tests (hand-mutated circuits).

Circuit rounds are *re-derived statically* from the schedule through
:meth:`~repro.optical.network.OpticalRingNetwork.plan_step_rounds` with
validation off — lowering is deterministic for ``first_fit``/``best_fit``
strategies, so the derived circuits are exactly the ones the plan priced.
``random_fit`` substrates never get derived circuits (re-running RWA would
consume RNG draws an unverified run would not), and hand-built contexts can
always inject their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.backend.base import LoweredPlan
from repro.collectives.base import CommStep, Schedule
from repro.core.constraints import OpticalPhyParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optical.circuit import Circuit
    from repro.optical.config import OpticalSystemConfig

#: Entry-count × transfer-count product above which the symbolic dataflow
#: rule reports an INFO skip instead of analyzing (keeps paper-scale golden
#: plans cheap to verify; adversarial tests run far below it).
DATAFLOW_SIZE_LIMIT = 200_000


@dataclass
class CheckContext:
    """Everything the plan rules may inspect for one verification run.

    Attributes:
        plan: The lowered plan under audit (may be ``None`` when verifying
            a schedule that was never lowered).
        schedule: The source schedule (enables dataflow/step-count rules).
        config: Optical system configuration, when the plan targets the
            optical substrate (enables budget/feasibility rules).
        phy: Physical-layer parameters for Eqs 7–13; defaults to
            ``config.phy`` when unset.
        mrrs_per_interface: Per-direction Tx/Rx wavelength capacity used by
            the port-budget rule; defaults to ``config.n_wavelengths``.
        circuit_rounds: ``profile-entry index -> rounds of circuits`` for
            the circuit-level rules (``None`` entries are skipped).
        dataflow_size_limit: Cap on ``n_steps × transfers`` above which the
            dataflow rule skips with an INFO finding.
    """

    plan: LoweredPlan | None = None
    schedule: Schedule | None = None
    config: "OpticalSystemConfig | None" = None
    phy: OpticalPhyParams | None = None
    mrrs_per_interface: int | None = None
    circuit_rounds: dict[int, list[list["Circuit"]]] | None = None
    dataflow_size_limit: int = DATAFLOW_SIZE_LIMIT
    _profile: list[tuple[CommStep, int]] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.phy is None and self.config is not None:
            # Derated by any laser-power droop in the config's fault set,
            # so the phy rules audit against the budget that actually
            # applies (identical to config.phy for a healthy system).
            self.phy = self.config.effective_phy
        if self.mrrs_per_interface is None and self.config is not None:
            self.mrrs_per_interface = self.config.n_wavelengths

    @property
    def algorithm(self) -> str | None:
        """Algorithm name from the plan or the schedule (plan wins)."""
        if self.plan is not None:
            return self.plan.algorithm
        return self.schedule.algorithm if self.schedule is not None else None

    @property
    def n_nodes(self) -> int | None:
        """Node count from the plan or the schedule."""
        if self.plan is not None:
            return self.plan.n_nodes
        return self.schedule.n_nodes if self.schedule is not None else None

    @property
    def wrht_plan(self):
        """The resolved :class:`~repro.core.planner.WrhtPlan`, if any.

        Looked up on the schedule's ``meta["plan"]`` first, then on the
        lowered plan's ``meta["wrht_plan"]`` (stashed by the optical
        backend's ``lower``), so plan-only verification still sees it.
        """
        if self.schedule is not None:
            plan = self.schedule.meta.get("plan")
            if plan is not None:
                return plan
        if self.plan is not None:
            return self.plan.meta.get("wrht_plan")
        return None

    @property
    def participants(self) -> tuple[int, ...] | None:
        """Participating node ids of a shrunk (degraded) schedule, if any.

        ``None`` means every node participates (the healthy default).
        Looked up on ``schedule.meta["participants"]`` first, then the
        lowered plan's ``meta["participants"]`` (stashed by the optical
        backend's ``lower``).
        """
        if self.schedule is not None:
            participants = self.schedule.meta.get("participants")
            if participants is not None:
                return tuple(participants)
        if self.plan is not None:
            participants = self.plan.meta.get("participants")
            if participants is not None:
                return tuple(participants)
        return None

    def profile(self) -> list[tuple[CommStep, int]]:
        """``(representative step, count)`` pairs, or ``[]`` if unknown."""
        if self._profile is not None:
            return self._profile
        if self.schedule is not None:
            return list(self.schedule.timing_profile)
        return []

    def has(self, need: str) -> bool:
        """Whether this context satisfies one rule requirement tag."""
        if need == "plan":
            return self.plan is not None
        if need == "schedule":
            return self.schedule is not None
        if need == "steps":
            return self.schedule is not None and self.schedule.steps is not None
        if need == "config":
            return self.config is not None
        if need == "circuits":
            return bool(self.circuit_rounds)
        raise ValueError(f"unknown rule requirement {need!r}")


def optical_context(
    backend,
    schedule: Schedule,
    plan: LoweredPlan | None = None,
    *,
    bytes_per_elem: float = 4.0,
    derive_circuits: bool = True,
) -> CheckContext:
    """Build the full verification context for an optical backend.

    Args:
        backend: An :class:`~repro.backend.optical.OpticalBackend` or the
            underlying :class:`~repro.optical.network.OpticalRingNetwork`.
        schedule: The schedule the plan was (or will be) lowered from.
        plan: A previously lowered plan; lowered on demand when ``None``.
        bytes_per_elem: Element width used when lowering/deriving.
        derive_circuits: Statically re-derive per-pattern circuit rounds
            (skipped automatically for ``random_fit`` substrates).

    Returns:
        A :class:`CheckContext` with plan, schedule, config and (where
        derivable) circuit rounds populated.
    """
    network = getattr(backend, "network", backend)
    if plan is None:
        plan = network.lower(schedule, bytes_per_elem)
    circuit_rounds: dict[int, list[list[Circuit]]] | None = None
    if derive_circuits and network.strategy != "random_fit":
        # A hold plan (choose_plan's wavelength-partition variant) was
        # lowered with alternating halves of the budget blocked; re-derive
        # with the same mask so the circuit rules audit the circuits the
        # plan actually priced.
        partitioned = bool(
            plan is not None
            and (plan.meta.get("reconfig") or {}).get("partition")
        )
        half = network.config.n_wavelengths // 2
        halves = (
            frozenset(range(half, network.config.n_wavelengths)),
            frozenset(range(half)),
        )
        circuit_rounds = {}
        priced: dict[tuple, list[list[Circuit]]] = {}
        for index, (step, _count, key) in enumerate(schedule.lowering_profile()):
            extra_blocked = None
            if partitioned:
                extra_blocked = halves[index % 2]
                key = (key, ("partition", index % 2))
            rounds = priced.get(key)
            if rounds is None:
                rounds = network.plan_step_rounds(
                    step, bytes_per_elem, validate=False,
                    extra_blocked=extra_blocked,
                )
                priced[key] = rounds
            circuit_rounds[index] = rounds
    return CheckContext(
        plan=plan,
        schedule=schedule,
        config=network.config,
        circuit_rounds=circuit_rounds,
    )
