"""Shared interval-exclusivity engine behind every conflict rule.

Both runtime validators the repo grew independently — order-dependent write
detection in :func:`repro.collectives.verify.check_step_conflicts` and WDM
channel-segment exclusivity in
:func:`repro.optical.circuit.validate_no_conflicts` — are instances of one
problem: claimants assert half-open integer intervals on named resources,
and two overlapping claims on the same resource conflict unless both are
*combinable* (commutative ``sum`` writes). This module is that problem
solved once:

- a write conflict is two overlapping element ranges claimed on the same
  destination node where at least one claim is not a ``sum``;
- a wavelength conflict is two circuits claiming the same ring segment
  (a unit interval ``[s, s+1)``) on the same ``(direction, fiber,
  wavelength)`` channel — circuits are never combinable.

The module is dependency-free (no ``repro`` imports) so that both the
legacy entry points and the :mod:`repro.check` rules can route through it
without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable


@dataclass(frozen=True)
class Claim:
    """One claim of the half-open interval ``[lo, hi)`` on ``resource``.

    Attributes:
        resource: Hashable resource key (a destination node id, a WDM
            channel tuple, ...). Claims on different resources never
            conflict.
        lo: Inclusive interval start.
        hi: Exclusive interval end (must satisfy ``lo < hi``).
        owner: Arbitrary tag identifying the claimant, echoed back in
            conflicts (a transfer, a circuit, an index, ...).
        combinable: ``True`` when the claim commutes with other combinable
            claims (a ``sum`` write); two combinable claims never conflict.
    """

    resource: Hashable
    lo: int
    hi: int
    owner: object = None
    combinable: bool = False

    def __post_init__(self) -> None:
        if self.lo >= self.hi:
            raise ValueError(f"empty claim interval [{self.lo}, {self.hi})")


@dataclass(frozen=True)
class Conflict:
    """Two claims that overlap illegally on one resource."""

    resource: Hashable
    first: Claim
    second: Claim

    @property
    def overlap(self) -> tuple[int, int]:
        """The overlapping sub-interval ``[lo, hi)``."""
        return (
            max(self.first.lo, self.second.lo),
            min(self.first.hi, self.second.hi),
        )


def find_conflicts(claims: list[Claim], first_only: bool = False) -> list[Conflict]:
    """All illegal overlaps among ``claims``, grouped per resource.

    Within one resource, claims are sorted by ``(lo, hi)`` and swept; a pair
    conflicts when the intervals overlap and not both claims are
    combinable. The sweep compares each claim against the still-open
    predecessors, so runtime is linear in claims plus reported overlaps.

    Args:
        claims: The claims to audit (any order).
        first_only: Stop after the first conflict (cheap validation mode).

    Returns:
        Conflicts in deterministic (resource-insertion, position) order.
    """
    by_resource: dict[Hashable, list[Claim]] = {}
    for claim in claims:
        by_resource.setdefault(claim.resource, []).append(claim)
    conflicts: list[Conflict] = []
    for resource, group in by_resource.items():
        group.sort(key=lambda c: (c.lo, c.hi))
        open_claims: list[Claim] = []
        for claim in group:
            still_open = []
            for prev in open_claims:
                if prev.hi > claim.lo:
                    still_open.append(prev)
                    if not (prev.combinable and claim.combinable):
                        conflicts.append(Conflict(resource, prev, claim))
                        if first_only:
                            return conflicts
            still_open.append(claim)
            open_claims = still_open
    return conflicts


@dataclass
class IntervalSetMap:
    """Map from half-open intervals to frozensets, with exact algebra.

    The symbolic dataflow rule tracks, for every node, *which source ranks'
    contributions* each element range currently holds. This container keeps
    disjoint, sorted ``(lo, hi, frozenset)`` runs and supports the two
    operations execution semantics need: overwrite a range (``copy``) and
    union-in a range (``sum``).

    Runs are merged eagerly when adjacent with equal sets, so long schedules
    do not fragment the map.
    """

    total: int
    initial: frozenset
    _runs: list[tuple[int, int, frozenset]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total <= 0:
            raise ValueError(f"total must be positive, got {self.total!r}")
        if not self._runs:
            self._runs = [(0, self.total, self.initial)]

    def _check_range(self, lo: int, hi: int) -> None:
        if not (0 <= lo < hi <= self.total):
            raise ValueError(f"range [{lo}, {hi}) outside [0, {self.total})")

    def slice(self, lo: int, hi: int) -> list[tuple[int, int, frozenset]]:
        """The runs covering ``[lo, hi)``, clipped to it."""
        self._check_range(lo, hi)
        out = []
        for rlo, rhi, value in self._runs:
            if rhi <= lo or rlo >= hi:
                continue
            out.append((max(rlo, lo), min(rhi, hi), value))
        return out

    def _splice(self, lo: int, hi: int, pieces: list[tuple[int, int, frozenset]]) -> None:
        """Replace the ``[lo, hi)`` portion with ``pieces`` and re-merge."""
        rebuilt: list[tuple[int, int, frozenset]] = []
        for rlo, rhi, value in self._runs:
            if rhi <= lo or rlo >= hi:
                rebuilt.append((rlo, rhi, value))
                continue
            if rlo < lo:
                rebuilt.append((rlo, lo, value))
            if rhi > hi:
                rebuilt.append((hi, rhi, value))
        rebuilt.extend(pieces)
        rebuilt.sort(key=lambda r: r[0])
        merged: list[tuple[int, int, frozenset]] = []
        for rlo, rhi, value in rebuilt:
            if merged and merged[-1][1] == rlo and merged[-1][2] == value:
                merged[-1] = (merged[-1][0], rhi, value)
            else:
                merged.append((rlo, rhi, value))
        self._runs = merged

    def overwrite(self, lo: int, hi: int, pieces: list[tuple[int, int, frozenset]]) -> None:
        """``copy`` semantics: ``[lo, hi)`` becomes exactly ``pieces``."""
        self._check_range(lo, hi)
        self._splice(lo, hi, pieces)

    def union(
        self, lo: int, hi: int, pieces: list[tuple[int, int, frozenset]]
    ) -> list[tuple[int, int, frozenset]]:
        """``sum`` semantics: union each incoming piece into what is held.

        Returns:
            Double-count evidence: ``(lo, hi, ranks)`` sub-intervals where
            the incoming piece carried ranks the map already held. Under
            the no-duplicate invariant the frozensets remain a faithful
            multiset abstraction, so a non-empty return is exactly a
            conservation violation.
        """
        self._check_range(lo, hi)
        current = self.slice(lo, hi)
        merged: list[tuple[int, int, frozenset]] = []
        duplicates: list[tuple[int, int, frozenset]] = []
        bounds = sorted(
            {lo, hi}
            | {b for plo, phi, _ in pieces for b in (plo, phi)}
            | {b for clo, chi, _ in current for b in (clo, chi)}
        )
        for blo, bhi in zip(bounds, bounds[1:]):
            held = frozenset()
            for clo, chi, value in current:
                if clo <= blo and chi >= bhi:
                    held = value
                    break
            incoming = frozenset()
            for plo, phi, value in pieces:
                if plo <= blo and phi >= bhi:
                    incoming = value
                    break
            dup = held & incoming
            if dup:
                duplicates.append((blo, bhi, dup))
            merged.append((blo, bhi, held | incoming))
        self._splice(lo, hi, merged)
        return duplicates

    def values_over(self, lo: int, hi: int) -> list[frozenset]:
        """Distinct sets held across ``[lo, hi)`` (one per run)."""
        return [value for _, _, value in self.slice(lo, hi)]

    def uniform_value(self) -> frozenset | None:
        """The single set held over the whole range, or ``None`` if mixed."""
        values = {value for _, _, value in self._runs}
        return next(iter(values)) if len(values) == 1 else None
