"""SARIF 2.1.0 emission for check findings.

SARIF (Static Analysis Results Interchange Format) is the exchange format
CI systems ingest for inline annotations. The mapping is deliberately
minimal: one ``run``, one ``tool.driver`` naming the analyzer, one
``rules`` entry per distinct rule id seen (plus the full catalog when
given), one ``result`` per :class:`~repro.check.findings.Finding`.

Severity maps ``ERROR -> "error"``, ``WARNING -> "warning"``,
``INFO -> "note"`` per the SARIF ``level`` enumeration.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.check.findings import Finding, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _location(finding: Finding) -> list[dict]:
    if not finding.location:
        return []
    path, _, line_text = finding.location.rpartition(":")
    if not path:
        path, line_text = finding.location, ""
    region = {}
    if line_text.isdigit():
        region = {"region": {"startLine": max(1, int(line_text))}}
    return [
        {
            "physicalLocation": {
                "artifactLocation": {"uri": path},
                **region,
            }
        }
    ]


def to_sarif(
    findings: list[Finding],
    *,
    tool_name: str = "repro.check.flow",
    rule_catalog: Mapping[str, str] | None = None,
) -> dict:
    """Render findings as a SARIF 2.1.0 log object (a plain dict).

    Args:
        findings: The findings to report.
        tool_name: ``tool.driver.name`` for the run.
        rule_catalog: Optional rule id -> short description map; ids seen
            in ``findings`` but absent from the catalog are added with
            their first message as the description.
    """
    catalog: dict[str, str] = dict(rule_catalog or {})
    for finding in findings:
        catalog.setdefault(finding.rule_id, finding.message)
    rule_ids = sorted(catalog)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = [
        {
            "ruleId": finding.rule_id,
            "ruleIndex": rule_index[finding.rule_id],
            "level": _LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": _location(finding),
        }
        for finding in findings
    ]
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": "https://example.invalid/repro",
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {"text": catalog[rule_id]},
                            }
                            for rule_id in rule_ids
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(
    findings: list[Finding],
    path: str,
    *,
    tool_name: str = "repro.check.flow",
    rule_catalog: Mapping[str, str] | None = None,
) -> None:
    """Serialize :func:`to_sarif` output to ``path`` as JSON."""
    log = to_sarif(findings, tool_name=tool_name, rule_catalog=rule_catalog)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(log, fh, indent=2, sort_keys=True)
        fh.write("\n")
