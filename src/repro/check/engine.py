"""Rule registry and the ``verify_plan`` entry point.

A plan rule is a pure function ``CheckContext -> Iterable[Finding]``
registered under a stable id (``PLAN000``–``PLAN006``) together with the
context requirements it needs (``"plan"``, ``"schedule"``, ``"steps"``,
``"config"``, ``"circuits"``). :func:`run_rules` runs every applicable rule
and collects findings; rules whose requirements the context cannot satisfy
are skipped silently (the caller chose what evidence to provide), while
rules that *run* but cannot reach a verdict emit ``INFO`` findings so a
"clean" report is distinguishable from "didn't look".

Adding a rule is one decorated function::

    @register_rule("PLAN007", "my invariant", needs=("plan",))
    def _rule_my_invariant(ctx: CheckContext) -> Iterable[Finding]:
        ...

The registry is import-populated by :mod:`repro.check.plan_rules`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.check.context import CheckContext
from repro.check.findings import Finding, errors, render_findings


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis rule.

    Attributes:
        rule_id: Stable identifier (also the findings' ``rule_id``).
        title: Short human-readable description.
        needs: Context requirement tags that must be satisfiable for the
            rule to run (see :meth:`CheckContext.has`).
        fn: The rule body.
    """

    rule_id: str
    title: str
    needs: tuple[str, ...]
    fn: Callable[[CheckContext], Iterable[Finding]]

    def applies(self, ctx: CheckContext) -> bool:
        """Whether ``ctx`` satisfies every requirement tag."""
        return all(ctx.has(need) for need in self.needs)


_RULES: dict[str, Rule] = {}


def register_rule(
    rule_id: str, title: str, needs: tuple[str, ...] = ()
) -> Callable[[Callable[[CheckContext], Iterable[Finding]]], Callable]:
    """Decorator registering a rule body under ``rule_id``.

    Re-registering an id replaces the previous rule (tests use this to
    inject probes).
    """

    def decorate(fn: Callable[[CheckContext], Iterable[Finding]]) -> Callable:
        _RULES[rule_id] = Rule(rule_id=rule_id, title=title, needs=tuple(needs), fn=fn)
        return fn

    return decorate


def _ensure_catalog() -> None:
    """Import the rule catalog so the registry is populated."""
    import repro.check.plan_rules  # noqa: F401  (registration side effect)


def all_rules() -> list[Rule]:
    """Every registered plan rule, sorted by id."""
    _ensure_catalog()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    """The rule registered under ``rule_id``.

    Raises:
        KeyError: Naming the unknown id and listing the known ones.
    """
    _ensure_catalog()
    try:
        return _RULES[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; registered: {sorted(_RULES)}"
        ) from None


class PlanVerificationError(AssertionError):
    """A lowered plan failed static verification.

    Subclasses ``AssertionError`` so pytest renders it as a test failure.
    Carries the full finding list on :attr:`findings`.
    """

    def __init__(self, findings: list[Finding]) -> None:
        self.findings = list(findings)
        bad = errors(self.findings)
        super().__init__(
            f"plan verification failed with {len(bad)} error finding(s):\n"
            + render_findings(bad)
        )

    def __reduce__(self):
        """Pickle support: rebuild from the finding list (sweep workers)."""
        return (type(self), (self.findings,))


def run_rules(
    ctx: CheckContext,
    rule_ids: Iterable[str] | None = None,
    *,
    report_skipped: bool = False,
) -> list[Finding]:
    """Run every applicable rule against ``ctx`` and collect findings.

    Args:
        ctx: The evidence to audit.
        rule_ids: Restrict to these ids (default: all registered rules).
            Named rules that the context cannot satisfy are still skipped.
        report_skipped: Emit an ``INFO`` finding for every rule the
            context cannot satisfy, naming the missing requirement tags —
            so "clean because nothing applied" is distinguishable from
            "clean because everything passed". The analytic backend's
            plans, for example, carry no optical config or circuits, and
            the budget/feasibility rules silently sit out without this.

    Returns:
        Findings in (rule id, emission) order.
    """
    from repro.check.findings import Severity

    rules = all_rules() if rule_ids is None else [get_rule(r) for r in rule_ids]
    findings: list[Finding] = []
    for rule in rules:
        if rule.applies(ctx):
            findings.extend(rule.fn(ctx))
        elif report_skipped:
            missing = sorted(need for need in rule.needs if not ctx.has(need))
            findings.append(
                Finding(
                    rule_id=rule.rule_id,
                    severity=Severity.INFO,
                    message=(
                        f"skipped: context lacks {', '.join(missing)!s} "
                        f"(rule: {rule.title})"
                    ),
                    details={"skipped": True, "missing": missing},
                )
            )
    return findings


def verify_plan(
    plan=None,
    schedule=None,
    *,
    config=None,
    context: CheckContext | None = None,
    rule_ids: Iterable[str] | None = None,
    raise_on_error: bool = False,
    report_skipped: bool = False,
) -> list[Finding]:
    """Statically verify a lowered plan (and/or its source schedule).

    The one-stop entry point: builds a :class:`CheckContext` from whatever
    evidence is given (or takes a pre-built one — e.g. from
    :func:`~repro.check.context.optical_context`, which also derives the
    circuit rounds) and runs the applicable rules.

    Args:
        plan: The :class:`~repro.backend.base.LoweredPlan` under audit.
        schedule: The source schedule (enables dataflow/step-count rules).
        config: Optical system config (enables budget/feasibility rules).
        context: Pre-built context; overrides the three args above.
        rule_ids: Restrict verification to these rule ids.
        raise_on_error: Raise :class:`PlanVerificationError` when any
            ``ERROR`` finding is produced.
        report_skipped: Report inapplicable rules as ``INFO`` findings
            (see :func:`run_rules`).

    Returns:
        All findings (including ``INFO``/``WARNING``), in rule order.
    """
    if context is None:
        context = CheckContext(plan=plan, schedule=schedule, config=config)
    findings = run_rules(context, rule_ids=rule_ids, report_skipped=report_skipped)
    if raise_on_error and errors(findings):
        raise PlanVerificationError(findings)
    return findings
