"""Module-level call graph over stdlib ``ast`` — the flow rules' substrate.

The REP lint rules are lexical: they judge one call site in isolation.
The CONC/DET flow rules (:mod:`repro.check.flow`) are *interprocedural*:
"a blocking call reachable from an ``async def``" or "wall-clock reaching
a cache key" are properties of paths through the program, not of single
lines. This module builds the graph those rules walk:

- every function/method definition across the analyzed files, keyed by a
  stable qualified name ``module:Class.method`` / ``module:func``;
- every call site, resolved where statically possible to either an
  **internal** callee (a function in the analyzed set) or an **external**
  dotted name (``time.sleep``, ``os.replace``, ...).

Resolution is deliberately cheap but covers the shapes this codebase
actually uses:

- bare names: enclosing nested-function scopes, then module-level
  functions and classes, then import aliases (``from x import y as z``);
- ``self.m()`` / ``cls.m()``: the enclosing class, walking analyzed base
  classes (``PersistentPlanCache.get`` resolves ``super()``-style calls
  into ``PlanCache``);
- typed receivers: parameter annotations (``store: PlanStore``),
  ``__init__`` attribute inference (``self.store = PlanStore(...)`` or
  via a typed local), and dataclass-style class-level annotations — so
  ``self.engine.flush()`` resolves through ``self.engine = engine`` when
  ``engine``'s type is known;
- dotted module calls through import aliases (``np.random.default_rng``
  normalizes to ``numpy.random.default_rng``).

Unresolvable calls keep their terminal attribute name (``site.terminal``)
so effect heuristics can still pattern-match well-known method names
(``.write_bytes`` is a disk write whatever the receiver). The graph
over-approximates reachability and never executes code; the flow rules'
pragma escape hatch absorbs deliberate exceptions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.check.findings import Finding
from repro.check.lint import syntax_finding


def module_name(path: str) -> str:
    """Dotted module name for a source path.

    ``src/repro/service/daemon.py`` → ``repro.service.daemon``; paths
    outside a ``src``/package layout fall back to the file stem (fixture
    files in temp dirs still get a usable, unique-enough name).
    """
    norm = str(path).replace("\\", "/")
    parts = [p for p in norm.split("/") if p]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<anonymous>"


@dataclass
class FunctionInfo:
    """One analyzed function or method definition."""

    qualname: str
    module: str
    name: str
    class_key: str | None
    is_async: bool
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    lineno: int
    params: tuple[str, ...]


@dataclass
class ClassInfo:
    """One analyzed class: its methods, typed attributes and bases."""

    key: str
    name: str
    module: str
    path: str
    methods: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    base_keys: list[str] = field(default_factory=list)


@dataclass
class CallSite:
    """One call expression, as resolved as the graph could make it.

    Attributes:
        caller: Qualname of the enclosing function (``module:<module>``
            for module-level code).
        callee: Qualname of the resolved internal target, or ``None``.
        external: Normalized dotted name of an external target
            (``time.sleep``), or ``None`` when internal/unresolved.
        terminal: Rightmost identifier of the called expression — always
            available, even for unresolved attribute calls.
        constructs: Class key when the call constructs an analyzed class.
        node: The :class:`ast.Call` node.
        path: Source file of the call site.
        lineno: 1-based line of the call site.
    """

    caller: str
    callee: str | None
    external: str | None
    terminal: str | None
    constructs: str | None
    node: ast.Call
    path: str
    lineno: int


def _terminal(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _terminal(node.func)
    if isinstance(node, ast.Subscript):
        return _terminal(node.value)
    return None


def _annotation_class_name(node: ast.expr | None) -> ast.expr | None:
    """Strip ``Optional[T]`` / ``T | None`` / quotes down to the T node."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_class_name(node.left)
        if left is not None and not (
            isinstance(left, ast.Constant) and left.value is None
        ):
            return left
        return _annotation_class_name(node.right)
    if isinstance(node, ast.Subscript):
        base = _terminal(node.value)
        if base in ("Optional", "Annotated"):
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_class_name(inner)
        return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        return node
    return None


class _ModuleIndex:
    """Per-module symbol table: imports, top-level defs, classes."""

    def __init__(self, name: str, path: str, tree: ast.Module) -> None:
        self.name = name
        self.path = path
        self.tree = tree
        self.imports: dict[str, str] = {}
        self.top_functions: dict[str, str] = {}
        self.top_classes: dict[str, str] = {}

    def resolve_relative(self, level: int, module: str | None) -> str:
        parts = self.name.split(".")
        # level 1 = the containing package of this module.
        base = parts[: len(parts) - level] if level <= len(parts) else []
        if module:
            base = base + module.split(".")
        return ".".join(base)


class CallGraph:
    """The analyzed function set, class set and resolved call sites."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.calls: dict[str, list[CallSite]] = {}
        self._dotted_functions: dict[str, str] = {}
        self._dotted_classes: dict[str, str] = {}
        self._modules: dict[str, _ModuleIndex] = {}

    # -- lookups --------------------------------------------------------
    def sites(self, caller: str) -> list[CallSite]:
        """Call sites inside ``caller`` (empty for leaves/unknowns)."""
        return self.calls.get(caller, [])

    def callees(self, caller: str) -> set[str]:
        """Internal callees of ``caller``."""
        return {s.callee for s in self.sites(caller) if s.callee is not None}

    def method_of(self, class_key: str, name: str) -> str | None:
        """Resolve ``name`` on ``class_key``, walking analyzed bases."""
        seen: set[str] = set()
        stack = [class_key]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            info = self.classes.get(key)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            stack.extend(info.base_keys)
        return None

    def class_methods(self, class_key: str) -> list[FunctionInfo]:
        """Every analyzed method defined directly on ``class_key``."""
        info = self.classes.get(class_key)
        if info is None:
            return []
        return [self.functions[q] for q in info.methods.values()]

    def async_functions(self) -> list[FunctionInfo]:
        """Every ``async def`` in the analyzed set."""
        return [f for f in self.functions.values() if f.is_async]

    # -- construction ---------------------------------------------------
    def _dotted_of(self, node: ast.expr, index: _ModuleIndex) -> str | None:
        """Normalized dotted name of a Name/Attribute chain, or ``None``."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = index.imports.get(node.id)
        if head is None:
            # A module-level symbol referenced by bare name still has a
            # dotted identity within its own module.
            if node.id in index.top_functions or node.id in index.top_classes:
                head = f"{index.name}.{node.id}"
            else:
                return ".".join([node.id, *reversed(parts)]) if parts else node.id
        return ".".join([head, *reversed(parts)])

    def _index_module(self, path: str, tree: ast.Module) -> _ModuleIndex:
        index = _ModuleIndex(module_name(path), path, tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        index.imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        index.imports[root] = root
            elif isinstance(node, ast.ImportFrom):
                base = (
                    index.resolve_relative(node.level, node.module)
                    if node.level
                    else (node.module or "")
                )
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    index.imports[local] = f"{base}.{alias.name}" if base else alias.name
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                index.top_functions[node.name] = f"{index.name}:{node.name}"
            elif isinstance(node, ast.ClassDef):
                index.top_classes[node.name] = f"{index.name}:{node.name}"
        return index

    def _collect_defs(self, index: _ModuleIndex) -> None:
        mod = index.name

        def visit(node: ast.AST, scope: list[str], class_key: str | None) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{mod}:{'.'.join([*scope, child.name])}"
                    args = child.args
                    params = tuple(
                        a.arg
                        for a in (
                            *args.posonlyargs, *args.args, *args.kwonlyargs
                        )
                    )
                    self.functions[qual] = FunctionInfo(
                        qualname=qual,
                        module=mod,
                        name=child.name,
                        class_key=class_key,
                        is_async=isinstance(child, ast.AsyncFunctionDef),
                        node=child,
                        path=index.path,
                        lineno=child.lineno,
                        params=params,
                    )
                    if class_key is not None and len(scope) == 1:
                        self.classes[class_key].methods[child.name] = qual
                    if not scope:
                        self._dotted_functions[f"{mod}.{child.name}"] = qual
                    visit(child, [*scope, child.name], None)
                elif isinstance(child, ast.ClassDef):
                    key = f"{mod}:{'.'.join([*scope, child.name])}"
                    self.classes[key] = ClassInfo(
                        key=key, name=child.name, module=mod, path=index.path
                    )
                    if not scope:
                        self._dotted_classes[f"{mod}.{child.name}"] = key
                    visit(child, [*scope, child.name], key)
                else:
                    visit(child, scope, class_key)

        visit(index.tree, [], None)

    def _resolve_class_ref(
        self, node: ast.expr | None, index: _ModuleIndex
    ) -> str | None:
        """Class key for a Name/Attribute class reference, or ``None``."""
        node = _annotation_class_name(node)
        if node is None:
            return None
        dotted = self._dotted_of(node, index)
        if dotted is None:
            return None
        key = self._dotted_classes.get(dotted)
        if key is not None:
            return key
        terminal = dotted.rsplit(".", 1)[-1]
        local = index.top_classes.get(terminal)
        if local is not None and dotted == f"{index.name}.{terminal}":
            return local
        return None

    def _infer_class_types(self, index: _ModuleIndex) -> None:
        """Populate ``attr_types`` from annotations and ``__init__`` bodies."""
        for key, info in self.classes.items():
            if info.module != index.name:
                continue
            class_node = self._class_node(index, info.name)
            if class_node is None:
                continue
            for stmt in class_node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    attr_key = self._resolve_class_ref(stmt.annotation, index)
                    if attr_key is not None:
                        info.attr_types[stmt.target.id] = attr_key
            for base in class_node.bases:
                base_key = self._resolve_class_ref(base, index)
                if base_key is not None:
                    info.base_keys.append(base_key)
            init = info.methods.get("__init__")
            if init is None:
                continue
            fn = self.functions[init]
            var_types = self._param_types(fn, index)
            for stmt in ast.walk(fn.node):
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                    inferred = self._expr_type(value, index, None, var_types)
                    if inferred is None:
                        continue
                    if isinstance(target, ast.Name):
                        var_types[target.id] = inferred
                    elif (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        info.attr_types.setdefault(target.attr, inferred)
                elif isinstance(stmt, ast.AnnAssign):
                    target = stmt.target
                    attr_key = self._resolve_class_ref(stmt.annotation, index)
                    if attr_key is None:
                        continue
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        info.attr_types.setdefault(target.attr, attr_key)

    def _class_node(self, index: _ModuleIndex, name: str) -> ast.ClassDef | None:
        for node in ast.walk(index.tree):
            if isinstance(node, ast.ClassDef) and node.name == name:
                return node
        return None

    def _param_types(
        self, fn: FunctionInfo, index: _ModuleIndex
    ) -> dict[str, str]:
        types: dict[str, str] = {}
        args = fn.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            key = self._resolve_class_ref(arg.annotation, index)
            if key is not None:
                types[arg.arg] = key
        return types

    def _expr_type(
        self,
        node: ast.expr,
        index: _ModuleIndex,
        class_key: str | None,
        var_types: dict[str, str],
    ) -> str | None:
        """Static type (class key) of an expression, where inferable."""
        if isinstance(node, ast.Name):
            if node.id == "self" and class_key is not None:
                return class_key
            return var_types.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._expr_type(node.value, index, class_key, var_types)
            if base is not None:
                info = self.classes.get(base)
                while info is not None:
                    if node.attr in info.attr_types:
                        return info.attr_types[node.attr]
                    info = (
                        self.classes.get(info.base_keys[0])
                        if info.base_keys
                        else None
                    )
            return None
        if isinstance(node, ast.Call):
            return self._resolve_class_ref(node.func, index)
        return None

    def _collect_calls(self, index: _ModuleIndex) -> None:
        mod = index.name
        module_caller = f"{mod}:<module>"

        def resolve(
            call: ast.Call,
            scopes: list[dict[str, str]],
            class_key: str | None,
            var_types: dict[str, str],
        ) -> tuple[str | None, str | None, str | None]:
            """-> (internal callee, external dotted, constructed class)."""
            func = call.func
            if isinstance(func, ast.Name):
                name = func.id
                for scope in reversed(scopes):
                    if name in scope:
                        return scope[name], None, None
                if name in index.top_functions:
                    return index.top_functions[name], None, None
                if name in index.top_classes:
                    key = index.top_classes[name]
                    return self.method_of(key, "__init__"), None, key
                dotted = index.imports.get(name)
                if dotted is not None:
                    if dotted in self._dotted_functions:
                        return self._dotted_functions[dotted], None, None
                    if dotted in self._dotted_classes:
                        key = self._dotted_classes[dotted]
                        return self.method_of(key, "__init__"), None, key
                    return None, dotted, None
                return None, name, None
            if isinstance(func, ast.Attribute):
                dotted = self._dotted_of(func, index)
                if dotted is not None:
                    if dotted in self._dotted_functions:
                        return self._dotted_functions[dotted], None, None
                    if dotted in self._dotted_classes:
                        key = self._dotted_classes[dotted]
                        return self.method_of(key, "__init__"), None, key
                receiver = func.value
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id in ("self", "cls")
                    and class_key is not None
                ):
                    target = self.method_of(class_key, func.attr)
                    if target is not None:
                        return target, None, None
                    return None, None, None
                rtype = self._expr_type(receiver, index, class_key, var_types)
                if rtype is not None:
                    target = self.method_of(rtype, func.attr)
                    if target is not None:
                        return target, None, None
                return None, dotted, None
            return None, None, None

        def visit_body(
            node: ast.AST,
            caller: str,
            scopes: list[dict[str, str]],
            class_key: str | None,
            var_types: dict[str, str],
        ) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._enter_function(
                        child, caller, scopes, class_key, index
                    )
                    continue
                if isinstance(child, ast.ClassDef):
                    # Methods were collected in the defs pass; walk them
                    # as their own callers.
                    for item in child.body:
                        if isinstance(
                            item, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            self._enter_function(
                                item,
                                caller,
                                scopes,
                                self._class_key_for(child, index),
                                index,
                            )
                    continue
                if isinstance(child, ast.Call):
                    callee, external, constructs = resolve(
                        child, scopes, class_key, var_types
                    )
                    self.calls.setdefault(caller, []).append(
                        CallSite(
                            caller=caller,
                            callee=callee,
                            external=external,
                            terminal=_terminal(child.func),
                            constructs=constructs,
                            node=child,
                            path=index.path,
                            lineno=child.lineno,
                        )
                    )
                visit_body(child, caller, scopes, class_key, var_types)

        self._visit_body = visit_body  # reused by _enter_function
        visit_body(index.tree, module_caller, [], None, {})

    def _class_key_for(self, node: ast.ClassDef, index: _ModuleIndex) -> str | None:
        return index.top_classes.get(node.name)

    def _enter_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        outer_caller: str,
        scopes: list[dict[str, str]],
        class_key: str | None,
        index: _ModuleIndex,
    ) -> None:
        """Switch caller context into ``node`` and walk its body."""
        # Find this def's qualname by matching (module, name, lineno).
        qual = None
        for candidate, info in self.functions.items():
            if (
                info.module == index.name
                and info.name == node.name
                and info.lineno == node.lineno
            ):
                qual = candidate
                break
        if qual is None:  # shadowed redefinition — attribute to outer
            qual = outer_caller
        fn = self.functions.get(qual)
        var_types = self._param_types(fn, index) if fn is not None else {}
        if fn is not None:
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if isinstance(target, ast.Name):
                        inferred = self._expr_type(
                            stmt.value, index, class_key, var_types
                        )
                        if inferred is not None:
                            var_types.setdefault(target.id, inferred)
        nested = {
            child.name: f"{qual.split(':')[0]}:"
            + f"{qual.split(':')[1]}.{child.name}"
            for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self._visit_body(
            node, qual, [*scopes, nested], class_key, var_types
        )


def build_callgraph(
    files: list[tuple[str, str]],
) -> tuple[CallGraph, list[Finding]]:
    """Build one call graph over ``(path, source)`` pairs.

    Unparseable files are reported as ``SYNTAX`` findings and excluded
    from the graph (every parseable file still contributes).
    """
    graph = CallGraph()
    findings: list[Finding] = []
    indices: list[_ModuleIndex] = []
    for path, source in files:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            findings.append(syntax_finding(exc, path))
            continue
        index = graph._index_module(path, tree)
        graph._modules[index.name] = index
        indices.append(index)
    for index in indices:
        graph._collect_defs(index)
    for index in indices:
        graph._infer_class_types(index)
    for index in indices:
        graph._collect_calls(index)
    return graph, findings


def load_files(paths: list[str | Path]) -> list[tuple[str, str]]:
    """Expand files/directories into ``(path, source)`` pairs."""
    files: list[tuple[str, str]] = []
    for path in paths:
        p = Path(path)
        if p.is_dir():
            for file in sorted(p.rglob("*.py")):
                files.append((str(file), file.read_text()))
        else:
            files.append((str(p), p.read_text()))
    return files
