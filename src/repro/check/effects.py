"""Reaching effects over the call graph: what a call *transitively* does.

Three analyses, all fixpoints over :class:`~repro.check.callgraph.CallGraph`:

**Effect propagation** (:func:`propagate_effects`). A function's *base*
effects are the hazards it performs directly — :data:`BLOCKING` (sync
sleep/subprocess/socket/disk I/O), :data:`WALLCLOCK` (host-clock reads),
:data:`RNG` (unseeded RNG use). Its *reaching* effects are the union of
its base effects and every internal callee's reaching effects. Witness
edges are kept so a finding can print the actual call chain
(``close -> flush -> _flush_locked -> write_bytes``) instead of a bare
verdict.

**Taint returns** (:func:`tainted_returners`). A function *returns* a
tainted value when any of its ``return`` expressions contains a call to a
taint source (e.g. ``time.time``) or to another tainted returner —
directly or through a local variable assigned from one. This is what lets
DET001 follow a wall-clock value through ``def stamp(): return clock()``
wrappers rather than only spotting ``time.time()`` lexically.

**Key sinks** (:func:`key_sink_params`). A function parameter is a *key
sink* when its value flows into plan/cache identity: an argument of a
``LoweredPlan(...)`` construction, the key argument of a plan-cache
``.put``, an argument of the fingerprint/digest/salt helpers, any part of
the value returned by a ``*key*``-named function, or an argument passed
into another function's key-sink parameter. Flow is tracked positionally
and by keyword, and propagates through simple local assignments.

All three over-approximate (no aliasing, no path sensitivity); the flow
rules pair them with the pragma escape hatch for the deliberate cases.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.check.callgraph import CallGraph, CallSite

#: Effect tags.
BLOCKING = "blocking"
WALLCLOCK = "wallclock"
RNG = "rng"

#: Dotted external calls that block the calling thread. Cheap metadata
#: syscalls (``mkdir``, ``unlink``, ``exists``) are deliberately absent:
#: flagging them in ``async def`` bodies would bury the real hazards.
BLOCKING_EXTERNALS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.socket",
        "socket.create_connection",
        "os.replace",
        "open",
        "input",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
    }
)

#: Method names that denote blocking I/O whatever the receiver type
#: (``Path.read_bytes`` etc. are unambiguous; generic names like
#: ``read``/``write`` are excluded — asyncio streams use them).
BLOCKING_METHOD_NAMES = frozenset(
    {
        "read_bytes",
        "write_bytes",
        "read_text",
        "write_text",
        "recv",
        "recvfrom",
        "sendall",
        "accept",
    }
)

#: Dotted external calls that read the host clock (taint sources for
#: DET001 and base WALLCLOCK effect).
WALLCLOCK_EXTERNALS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Terminal names of wall-clock reads when the dotted chain could not be
#: normalized (``self._clock.perf_counter`` and the like).
WALLCLOCK_TERMINALS = frozenset(
    {"perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns", "time_ns"}
)

#: ``random`` module functions using the hidden global RNG (mirrors the
#: REP001 set in :mod:`repro.check.lint`).
RNG_EXTERNALS = frozenset(
    {
        f"random.{name}"
        for name in (
            "betavariate", "choice", "choices", "expovariate", "gauss",
            "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
            "randbytes", "randint", "random", "randrange", "sample", "seed",
            "shuffle", "triangular", "uniform", "vonmisesvariate",
            "weibullvariate",
        )
    }
)

#: Functions whose every argument becomes part of a plan/cache identity.
KEY_HELPER_TERMINALS = frozenset(
    {"key_digest", "fingerprint", "delta_salted_key"}
)


def site_base_effects(site: CallSite) -> set[str]:
    """Base effects of one call site, judged without the graph."""
    effects: set[str] = set()
    dotted = site.external
    terminal = site.terminal
    if dotted in BLOCKING_EXTERNALS or (
        dotted is None and terminal in ("open", "input")
    ):
        effects.add(BLOCKING)
    if terminal in BLOCKING_METHOD_NAMES:
        effects.add(BLOCKING)
    if dotted in WALLCLOCK_EXTERNALS or terminal in WALLCLOCK_TERMINALS:
        effects.add(WALLCLOCK)
    if dotted in RNG_EXTERNALS:
        effects.add(RNG)
    if (
        terminal in ("default_rng", "Random")
        and not site.node.args
        and not site.node.keywords
    ):
        effects.add(RNG)
    return effects


@dataclass
class EffectReport:
    """Reaching effects plus the witness edges to reconstruct chains."""

    effects: dict[str, set[str]]
    #: ``(qualname, effect) -> CallSite`` introducing the effect locally.
    base_sites: dict[tuple[str, str], CallSite]
    #: ``(qualname, effect) -> callee qualname`` providing it transitively.
    via: dict[tuple[str, str], str]

    def has(self, qualname: str, effect: str) -> bool:
        """Whether ``qualname`` transitively performs ``effect``."""
        return effect in self.effects.get(qualname, ())

    def chain(self, qualname: str, effect: str, limit: int = 8) -> list[str]:
        """The witness call chain from ``qualname`` down to the effect."""
        chain = [qualname]
        current = qualname
        for _ in range(limit):
            if (current, effect) in self.base_sites:
                site = self.base_sites[(current, effect)]
                chain.append(site.external or site.terminal or "<call>")
                return chain
            nxt = self.via.get((current, effect))
            if nxt is None:
                return chain
            chain.append(nxt)
            current = nxt
        return chain


def propagate_effects(graph: CallGraph) -> EffectReport:
    """Fixpoint of reaching effects over the call graph."""
    effects: dict[str, set[str]] = {}
    base_sites: dict[tuple[str, str], CallSite] = {}
    via: dict[tuple[str, str], str] = {}
    callers: list[str] = list(graph.calls)
    for caller in callers:
        own: set[str] = set()
        for site in graph.sites(caller):
            for effect in site_base_effects(site):
                own.add(effect)
                base_sites.setdefault((caller, effect), site)
        effects[caller] = own
    changed = True
    while changed:
        changed = False
        for caller in callers:
            current = effects.setdefault(caller, set())
            for site in graph.sites(caller):
                if site.callee is None:
                    continue
                for effect in effects.get(site.callee, ()):
                    if effect not in current:
                        current.add(effect)
                        via.setdefault((caller, effect), site.callee)
                        changed = True
    return EffectReport(effects, base_sites, via)


# -- taint returns ------------------------------------------------------


def _call_matches(
    site_map: dict[int, CallSite],
    node: ast.Call,
    sources: frozenset[str],
    source_terminals: frozenset[str],
    tainted_fns: set[str],
) -> bool:
    site = site_map.get(id(node))
    if site is None:
        return False
    if site.external in sources:
        return True
    if site.terminal in source_terminals:
        return True
    return site.callee in tainted_fns


def _expr_tainted(
    node: ast.expr,
    site_map: dict[int, CallSite],
    sources: frozenset[str],
    source_terminals: frozenset[str],
    tainted_fns: set[str],
    tainted_locals: set[str],
) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _call_matches(
            site_map, sub, sources, source_terminals, tainted_fns
        ):
            return True
        if isinstance(sub, ast.Name) and sub.id in tainted_locals:
            return True
    return False


def _site_map(graph: CallGraph, qualname: str) -> dict[int, CallSite]:
    return {id(site.node): site for site in graph.sites(qualname)}


def tainted_locals_of(
    graph: CallGraph,
    qualname: str,
    sources: frozenset[str],
    source_terminals: frozenset[str] = frozenset(),
    tainted_fns: set[str] | None = None,
) -> set[str]:
    """Local names of ``qualname`` assigned (transitively) from a source."""
    fn = graph.functions.get(qualname)
    if fn is None:
        return set()
    tainted_fns = tainted_fns or set()
    site_map = _site_map(graph, qualname)
    tainted: set[str] = set()
    # Two passes catch forward-defined chains (a = src(); b = a).
    for _ in range(2):
        before = len(tainted)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                if _expr_tainted(
                    node.value, site_map, sources, source_terminals,
                    tainted_fns, tainted,
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            tainted.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name) and _expr_tainted(
                    node.value, site_map, sources, source_terminals,
                    tainted_fns, tainted,
                ):
                    tainted.add(node.target.id)
        if len(tainted) == before:
            break
    return tainted


def tainted_returners(
    graph: CallGraph,
    sources: frozenset[str],
    source_terminals: frozenset[str] = frozenset(),
) -> set[str]:
    """Functions whose return value carries taint from ``sources``."""
    tainted_fns: set[str] = set()
    changed = True
    while changed:
        changed = False
        for qualname, fn in graph.functions.items():
            if qualname in tainted_fns:
                continue
            site_map = _site_map(graph, qualname)
            locals_ = tainted_locals_of(
                graph, qualname, sources, source_terminals, tainted_fns
            )
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    if _expr_tainted(
                        node.value, site_map, sources, source_terminals,
                        tainted_fns, locals_,
                    ):
                        tainted_fns.add(qualname)
                        changed = True
                        break
    return tainted_fns


# -- key sinks ----------------------------------------------------------

_KEY_NAME_HINT = ("key",)


def _is_key_named(name: str) -> bool:
    lowered = name.lower()
    return any(hint in lowered for hint in _KEY_NAME_HINT)


def _names_in(node: ast.expr) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _sink_args_of_call(
    site: CallSite, sink_params: dict[str, set[str]], graph: CallGraph
) -> list[ast.expr]:
    """Argument expressions of ``site`` that land in a key identity."""
    node = site.node
    terminal = site.terminal
    out: list[ast.expr] = []
    if terminal == "LoweredPlan" or (
        site.constructs is not None
        and site.constructs.endswith(":LoweredPlan")
    ):
        out.extend(node.args)
        out.extend(kw.value for kw in node.keywords)
        return out
    if terminal in KEY_HELPER_TERMINALS:
        out.extend(node.args)
        out.extend(kw.value for kw in node.keywords)
        return out
    if terminal == "put" and isinstance(node.func, ast.Attribute) and node.args:
        # Any .put(key, value): the key argument is identity.
        out.append(node.args[0])
        return out
    if site.callee is not None and site.callee in sink_params:
        fn = graph.functions.get(site.callee)
        if fn is None:
            return out
        params = list(fn.params)
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        sink_names = sink_params[site.callee]
        for i, arg in enumerate(node.args):
            if i < len(params) and params[i] in sink_names:
                out.append(arg)
        for kw in node.keywords:
            if kw.arg is not None and kw.arg in sink_names:
                out.append(kw.value)
    return out


def key_sink_params(graph: CallGraph) -> dict[str, set[str]]:
    """``qualname -> parameter names`` that flow into key identities."""
    sink_params: dict[str, set[str]] = {}
    changed = True
    while changed:
        changed = False
        for qualname, fn in graph.functions.items():
            params = set(fn.params) - {"self", "cls"}
            if not params:
                continue
            flowing: set[str] = set()
            # A *key*-named function's return value IS the identity.
            if _is_key_named(fn.name):
                for node in ast.walk(fn.node):
                    if isinstance(node, ast.Return) and node.value is not None:
                        flowing |= _names_in(node.value) & params
            for site in graph.sites(qualname):
                for arg in _sink_args_of_call(site, sink_params, graph):
                    flowing |= _names_in(arg) & params
            current = sink_params.setdefault(qualname, set())
            if not flowing <= current:
                current |= flowing
                changed = True
    return {q: names for q, names in sink_params.items() if names}
