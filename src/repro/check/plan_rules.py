"""The plan-verifier rule catalog (PLAN000–PLAN008).

Every rule here audits a lowered plan *statically* — no simulated clock
ever advances. The catalog:

=========  ==============================================================
PLAN000    Plan structure: entry counts sum to ``n_steps``, counts are
           positive, replay entries reference an earlier identical
           pattern, plan and schedule agree.
PLAN001    Wavelength conflicts: segment×direction×wavelength interval
           analysis over each round's circuits (the defining WDM
           exclusivity property, Fig 1 / Sec 3).
PLAN002    Node port budget: per-(node, direction, fiber) Tx/Rx
           wavelength counts within the MRR capacity (two Tx and two Rx
           sets per node).
PLAN003    Dataflow conservation: symbolic interval analysis proving
           every rank ends holding exactly one contribution from every
           rank (the All-reduce postcondition), flagging both missing
           and double-counted contributions.
PLAN004    Step-count conformance: the schedule/plan step total matches
           the paper's closed forms (Table 1, Eqs 5/6).
PLAN005    Feasibility: wavelength demand within the budget, WRHT group
           size within Lemma 1's ``2w+1`` and the physical-layer maximum
           ``m'`` (Eqs 7–13), routes within the loss/BER budget.
PLAN006    Write conflicts: no order-dependent writes within any step
           (shared interval engine with the numerical executor).
PLAN007    No failed resource used: no circuit rides a dead wavelength,
           a banned MRR endpoint port, a quarantined or cut segment, and
           no transfer touches a dropped node (inert without faults).
PLAN008    Reconfiguration overlap: no circuit transmits on a resource
           still being tuned — re-derives each round's required exposed
           MRR tuning from its recorded claims, enforcing wavelength
           exclusivity across the step k/k+1 boundary (inert without a
           tuning model).
=========  ==============================================================

The rules reuse the substrate models as their backends — circuit conflict
analysis from :mod:`repro.optical.circuit`, node limits from
:mod:`repro.optical.node`, phy budgets from :mod:`repro.core.constraints` —
so the static verdicts can never drift from what the executors enforce at
runtime.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.check.context import CheckContext
from repro.check.engine import register_rule
from repro.check.findings import Finding, Severity
from repro.check.intervals import IntervalSetMap
from repro.core.constraints import OpticalPhyParams, max_group_size
from repro.core.steps import (
    bt_steps,
    rd_steps,
    ring_steps,
    scring_steps,
    swing_steps,
    wrht_steps,
)
from repro.core.wavelengths import optimal_group_size
from repro.optical.circuit import circuit_conflicts, describe_conflict
from repro.optical.node import node_violations
from repro.optical.phy import path_feasible
from repro.optical.topology import Route


def route_phy_findings(
    route: Route, params: OpticalPhyParams, step_index: int | None = None
) -> list[Finding]:
    """Loss/BER budget findings for one concrete route (Eqs 9 and 13).

    The shared implementation behind the executor's
    :func:`~repro.optical.phy.validate_route_phy` (which raises on the
    first finding) and the PLAN005 circuit sweep.
    """
    if path_feasible(route.hops, params):
        return []
    return [
        Finding(
            rule_id="PLAN005",
            severity=Severity.ERROR,
            message=(
                f"route of {route.hops} hops ({route.direction.value}) "
                "violates the optical loss/BER budget"
            ),
            step_index=step_index,
            details={"hops": route.hops, "direction": route.direction.value},
        )
    ]


@register_rule("PLAN000", "plan structure is internally consistent", needs=("plan",))
def rule_plan_structure(ctx: CheckContext) -> Iterator[Finding]:
    """Structural invariants of the lowered plan itself."""
    plan = ctx.plan
    if plan.bytes_per_elem <= 0:
        yield Finding(
            "PLAN000", Severity.ERROR,
            f"bytes_per_elem must be positive, got {plan.bytes_per_elem!r}",
        )
    total = 0
    seen_payloads: list = []
    for index, entry in enumerate(plan.entries):
        total += entry.count
        if entry.count < 1:
            yield Finding(
                "PLAN000", Severity.ERROR,
                f"entry repeats {entry.count} times (must be >= 1)",
                step_index=index,
            )
        if entry.n_transfers < 0:
            yield Finding(
                "PLAN000", Severity.ERROR,
                f"entry has negative transfer count {entry.n_transfers}",
                step_index=index,
            )
        if entry.replay and not any(p == entry.payload for p in seen_payloads):
            yield Finding(
                "PLAN000", Severity.ERROR,
                "entry is marked replay but no earlier entry priced its pattern",
                step_index=index,
            )
        seen_payloads.append(entry.payload)
    if total != plan.n_steps:
        yield Finding(
            "PLAN000", Severity.ERROR,
            f"entry counts sum to {total} but the plan declares "
            f"{plan.n_steps} steps",
        )
    schedule = ctx.schedule
    if schedule is not None:
        if schedule.n_steps != plan.n_steps:
            # Builders that declare their profile approximate (H-Ring's
            # wavelength-serialized closed form) get a warning, not an
            # error — the discrepancy is documented model behavior.
            exact = schedule.meta.get("profile_exact", True)
            yield Finding(
                "PLAN000",
                Severity.ERROR if exact else Severity.WARNING,
                f"plan covers {plan.n_steps} steps but the schedule has "
                f"{schedule.n_steps}"
                + ("" if exact else " (profile declared approximate)"),
            )
        if schedule.algorithm != plan.algorithm:
            yield Finding(
                "PLAN000", Severity.ERROR,
                f"plan algorithm {plan.algorithm!r} != schedule algorithm "
                f"{schedule.algorithm!r}",
            )
        # Per-entry profile correspondence holds for the pattern-lowering
        # backends; the analytic backend legitimately re-compresses the
        # profile into closed-form step classes, and the reconfiguration
        # pass (repro.optical.reconfig) may split an entry whose first
        # occurrence faces a different tuning boundary than its repeats —
        # it records the pre-split entry count for this check.
        n_entries = len(plan.entries)
        reconfig_info = plan.meta.get("reconfig")
        if isinstance(reconfig_info, dict):
            declared = reconfig_info.get("n_profile_entries", n_entries)
            if n_entries < declared:
                yield Finding(
                    "PLAN000", Severity.ERROR,
                    f"plan has {n_entries} entries but its reconfiguration "
                    f"meta declares {declared} pre-split profile entries "
                    "(splitting can only add entries)",
                )
            n_entries = declared
        if plan.backend != "analytic" and len(schedule.timing_profile) != (
            n_entries
        ):
            yield Finding(
                "PLAN000", Severity.ERROR,
                f"plan has {n_entries} profile entries but the schedule "
                f"profile has {len(schedule.timing_profile)}",
            )


@register_rule(
    "PLAN001", "no two circuits share a channel segment", needs=("circuits",)
)
def rule_wavelength_conflicts(ctx: CheckContext) -> Iterator[Finding]:
    """WDM exclusivity: interval analysis per (direction, fiber, λ)."""
    for index, rounds in sorted(ctx.circuit_rounds.items()):
        for round_no, circuits in enumerate(rounds):
            for conflict in circuit_conflicts(circuits):
                yield Finding(
                    "PLAN001", Severity.ERROR,
                    f"round {round_no}: {describe_conflict(conflict)}",
                    step_index=index,
                    details={"round": round_no},
                )


@register_rule(
    "PLAN002", "node Tx/Rx usage fits the MRR port budget", needs=("circuits",)
)
def rule_port_budget(ctx: CheckContext) -> Iterator[Finding]:
    """Per-node transceiver limits (two Tx/Rx sets, one MRR per λ)."""
    mrrs = ctx.mrrs_per_interface
    if mrrs is None:
        yield Finding(
            "PLAN002", Severity.INFO,
            "skipped: no MRR capacity known (provide config or "
            "mrrs_per_interface)",
        )
        return
    for index, rounds in sorted(ctx.circuit_rounds.items()):
        for round_no, circuits in enumerate(rounds):
            assignments = [
                (c.transfer, c.route, c.fiber, c.wavelength) for c in circuits
            ]
            for message in node_violations(assignments, mrrs_per_interface=mrrs):
                yield Finding(
                    "PLAN002", Severity.ERROR,
                    f"round {round_no}: {message}",
                    step_index=index,
                    details={"round": round_no},
                )


@register_rule(
    "PLAN003", "every rank ends holding the full reduced gradient", needs=("steps",)
)
def rule_dataflow_conservation(ctx: CheckContext) -> Iterator[Finding]:
    """Symbolic chunk-dataflow conservation over the materialized steps.

    Tracks, per node and element interval, the *set of ranks* whose
    contribution that interval currently holds. ``copy`` overwrites,
    ``sum`` unions — and a union that brings in a rank the destination
    already holds is a double count (set algebra plus the no-duplicate
    check makes the sets a faithful multiset abstraction). The All-reduce
    postcondition is then: every node uniformly holds the full rank set.
    """
    schedule = ctx.schedule
    work = sum(len(step.transfers) for step in schedule.steps)
    if work > ctx.dataflow_size_limit:
        yield Finding(
            "PLAN003", Severity.INFO,
            f"skipped: schedule has {work} transfers "
            f"(> limit {ctx.dataflow_size_limit})",
        )
        return
    n, total = schedule.n_nodes, schedule.total_elems
    held = [IntervalSetMap(total=total, initial=frozenset({i})) for i in range(n)]
    emitted = 0
    for step_no, step in enumerate(schedule.steps):
        # Bulk-synchronous: snapshot all reads before any write lands.
        reads = [
            (t, held[t.src].slice(t.lo, t.hi))
            for t in step.transfers
            if t.n_elems > 0
        ]
        for t, pieces in reads:
            if t.op == "copy":
                held[t.dst].overwrite(t.lo, t.hi, pieces)
        for t, pieces in reads:
            if t.op != "sum":
                continue
            for lo, hi, dup in held[t.dst].union(t.lo, t.hi, pieces):
                if emitted < 16:
                    yield Finding(
                        "PLAN003", Severity.ERROR,
                        f"node {t.dst} double-counts contribution(s) "
                        f"{sorted(dup)} over [{lo}, {hi}) "
                        f"(sum from node {t.src})",
                        step_index=step_no,
                    )
                emitted += 1
    # A shrunk (degraded) schedule only reduces over its participants:
    # they must end holding exactly the participant set, and every
    # bystander (dropped node) must be untouched, still holding only its
    # own contribution.
    participants = ctx.participants
    full = (
        frozenset(range(n)) if participants is None else frozenset(participants)
    )
    for node in range(n):
        expected = full if node in full else frozenset({node})
        value = held[node].uniform_value()
        if value == expected:
            continue
        sample = held[node].slice(0, total)
        lo, hi, got = next(
            ((lo, hi, v) for lo, hi, v in sample if v != expected),
            (0, total, value or frozenset()),
        )
        missing = sorted(expected - got)[:8]
        extra = sorted(got - expected)[:8]
        parts = []
        if missing:
            parts.append(f"missing contributions from ranks {missing}")
        if extra:
            parts.append(f"unexpected ranks {extra}")
        yield Finding(
            "PLAN003", Severity.ERROR,
            f"node {node} ends with incomplete reduction over [{lo}, {hi}): "
            + "; ".join(parts),
            details={"node": node},
        )


@register_rule("PLAN004", "step total matches the closed forms (Eqs 5/6)")
def rule_step_count(ctx: CheckContext) -> Iterator[Finding]:
    """Conformance against Table 1 / Eq 5–6 closed-form step counts."""
    algo, n = ctx.algorithm, ctx.n_nodes
    if algo is None or n is None:
        return
    actual = ctx.plan.n_steps if ctx.plan is not None else ctx.schedule.n_steps
    if n == 1:
        if actual != 0:
            yield Finding(
                "PLAN004", Severity.ERROR,
                f"single-node schedule must have 0 steps, has {actual}",
            )
        return
    # A shrunk (degraded) schedule runs the collective over the survivors:
    # every closed form applies to the participant count, not the ring size.
    participants = ctx.participants
    n_eff = n if participants is None else len(participants)
    expected: int | None = None
    source = ""
    if algo == "ring":
        expected, source = ring_steps(n_eff), "2(N-1)"
    elif algo == "bt":
        expected, source = bt_steps(n_eff), "2⌈log2 N⌉"
    elif algo == "rd":
        if ctx.schedule is None:
            yield Finding(
                "PLAN004", Severity.INFO,
                "skipped: RD variant unknown without the schedule",
            )
            return
        variant = ctx.schedule.meta.get("variant", "doubling")
        expected, source = rd_steps(n_eff, variant=variant), f"RD[{variant}]"
    elif algo == "swing":
        expected, source = swing_steps(n_eff), "2⌊log2 N⌋ (+2 off powers of two)"
    elif algo == "scring":
        if ctx.schedule is None:
            yield Finding(
                "PLAN004", Severity.INFO,
                "skipped: SCRing pipeline knob unknown without the schedule",
            )
            return
        pipeline = ctx.schedule.meta.get("pipeline", 1)
        expected, source = (
            scring_steps(n_eff, pipeline),
            f"2⌈(N-1)/min(2·{pipeline}, N-1)⌉",
        )
    elif algo == "wrht":
        plan = ctx.wrht_plan
        if plan is None:
            yield Finding(
                "PLAN004", Severity.INFO,
                "skipped: WRHT plan metadata unavailable",
            )
            return
        closed = wrht_steps(n_eff, plan.m, plan.n_wavelengths)
        if plan.theta != closed:
            yield Finding(
                "PLAN004", Severity.ERROR,
                f"WRHT plan declares θ={plan.theta} but the Eq 5/6 closed "
                f"form gives {closed} (N={n_eff}, m={plan.m}, "
                f"w={plan.n_wavelengths})",
            )
        expected, source = plan.theta, "θ=2⌈log_m N⌉ (−1 with all-to-all)"
    elif algo == "hring":
        yield Finding(
            "PLAN004", Severity.INFO,
            "skipped: the H-Ring closed form counts wavelength-serialized "
            "rounds, not schedule steps",
        )
        return
    else:
        return
    if expected is not None and actual != expected:
        yield Finding(
            "PLAN004", Severity.ERROR,
            f"{algo} covers {actual} steps but the closed form {source} "
            f"gives {expected} for N={n_eff}",
        )


@register_rule("PLAN005", "wavelength and physical-layer budgets hold", needs=("plan",))
def rule_feasibility(ctx: CheckContext) -> Iterator[Finding]:
    """Wavelength budget, Lemma 1 group size, and phy Eqs 7–13."""
    plan = ctx.plan
    budget = ctx.config.n_wavelengths if ctx.config is not None else None
    if budget is not None:
        for index, entry in enumerate(plan.entries):
            rounds = entry.payload if isinstance(entry.payload, tuple) else ()
            for round_no, rnd in enumerate(rounds):
                peak = getattr(rnd, "peak_wavelength", None)
                if peak is not None and peak > budget:
                    yield Finding(
                        "PLAN005", Severity.ERROR,
                        f"round {round_no} uses wavelength index "
                        f"{peak - 1} but the fiber carries only {budget}",
                        step_index=index,
                        details={"round": round_no},
                    )
    wrht = ctx.wrht_plan
    n = ctx.n_nodes
    if wrht is not None and n is not None:
        if wrht.m > n:
            yield Finding(
                "PLAN005", Severity.ERROR,
                f"group size m={wrht.m} exceeds the ring size N={n}",
            )
        lemma_cap = optimal_group_size(wrht.n_wavelengths)
        if wrht.m > lemma_cap:
            yield Finding(
                "PLAN005", Severity.ERROR,
                f"group size m={wrht.m} exceeds Lemma 1's cap 2w+1="
                f"{lemma_cap} for w={wrht.n_wavelengths}",
            )
        if wrht.peak_wavelengths > wrht.n_wavelengths:
            yield Finding(
                "PLAN005", Severity.ERROR,
                f"plan demands {wrht.peak_wavelengths} wavelengths but "
                f"budgets only {wrht.n_wavelengths}",
            )
        if budget is not None and wrht.n_wavelengths > budget:
            yield Finding(
                "PLAN005", Severity.ERROR,
                f"plan was computed for w={wrht.n_wavelengths} but the "
                f"substrate carries {budget} wavelengths",
            )
        if ctx.phy is not None:
            try:
                m_cap = max_group_size(n, ctx.phy, w=wrht.n_wavelengths)
            except ValueError as exc:
                yield Finding("PLAN005", Severity.ERROR, str(exc))
            else:
                if wrht.m > m_cap:
                    yield Finding(
                        "PLAN005", Severity.ERROR,
                        f"group size m={wrht.m} exceeds the physical-layer "
                        f"maximum m'={m_cap} (Eqs 7–13)",
                    )
    if ctx.phy is not None and ctx.circuit_rounds:
        seen_routes: set = set()
        for index, rounds in sorted(ctx.circuit_rounds.items()):
            for circuits in rounds:
                for circuit in circuits:
                    key = (circuit.route.direction, len(circuit.route.segments))
                    if key in seen_routes:
                        continue
                    seen_routes.add(key)
                    yield from route_phy_findings(
                        circuit.route, ctx.phy, step_index=index
                    )


@register_rule(
    "PLAN006", "no order-dependent writes within a step", needs=("schedule",)
)
def rule_write_conflicts(ctx: CheckContext) -> Iterator[Finding]:
    """Order-dependence audit over the profile's representative steps."""
    from repro.collectives.verify import step_write_conflicts

    for index, (step, _count) in enumerate(ctx.profile()):
        for conflict in step_write_conflicts(step):
            first, second = conflict.first, conflict.second
            yield Finding(
                "PLAN006", Severity.ERROR,
                f"writes [{first.lo},{first.hi}):{first.owner.op} and "
                f"[{second.lo},{second.hi}):{second.owner.op} into node "
                f"{conflict.resource} are order-dependent",
                step_index=index,
            )


@register_rule(
    "PLAN007", "no circuit or transfer uses a failed resource", needs=("config",)
)
def rule_no_failed_resources(ctx: CheckContext) -> Iterator[Finding]:
    """Fault-avoidance audit: a degraded plan must not touch dead hardware.

    Checks every derived circuit against the config's fault set — dead
    wavelengths, banned MRR endpoint ports, quarantined (stuck-MRR) spans,
    cut fiber segments — and every scheduled transfer against the dropped
    nodes. Yields nothing for a fault-free config, so healthy plans verify
    at zero cost.
    """
    config = ctx.config
    faults = config.faults
    dead_lams = config.dead_wavelengths
    if not faults and not dead_lams:
        return
    dead_nodes = faults.dead_nodes
    quarantine = faults.segment_quarantine_masks(config.n_nodes)
    if dead_nodes:
        for index, (step, _count) in enumerate(ctx.profile()):
            for t in step.transfers:
                for node in (t.src, t.dst):
                    if node in dead_nodes:
                        yield Finding(
                            "PLAN007", Severity.ERROR,
                            f"transfer {t.src} -> {t.dst} touches dropped "
                            f"node {node} — the schedule must shrink to "
                            "the survivors",
                            step_index=index,
                        )
    if not ctx.circuit_rounds:
        return
    for index, rounds in sorted(ctx.circuit_rounds.items()):
        for round_no, circuits in enumerate(rounds):
            for c in circuits:
                direction = c.route.direction
                who = f"circuit {c.transfer.src} -> {c.transfer.dst}"
                if c.wavelength in dead_lams:
                    yield Finding(
                        "PLAN007", Severity.ERROR,
                        f"round {round_no}: {who} rides dead wavelength "
                        f"{c.wavelength}",
                        step_index=index,
                        details={"round": round_no},
                    )
                banned = faults.endpoint_blocked(
                    c.transfer.src, direction
                ) | faults.endpoint_blocked(c.transfer.dst, direction)
                if c.wavelength in banned:
                    yield Finding(
                        "PLAN007", Severity.ERROR,
                        f"round {round_no}: {who} terminates wavelength "
                        f"{c.wavelength} on a failed MRR port",
                        step_index=index,
                        details={"round": round_no},
                    )
                cut = [
                    seg for seg in c.route.segments
                    if faults.is_cut(seg, direction)
                ]
                if cut:
                    yield Finding(
                        "PLAN007", Severity.ERROR,
                        f"round {round_no}: {who} crosses cut "
                        f"segment(s) {cut} ({direction.value})",
                        step_index=index,
                        details={"round": round_no},
                    )
                span = quarantine.get((direction, c.wavelength), 0)
                bad = [seg for seg in c.route.segments if span >> seg & 1]
                if bad:
                    yield Finding(
                        "PLAN007", Severity.ERROR,
                        f"round {round_no}: {who} crosses quarantined "
                        f"segment(s) {bad} on wavelength {c.wavelength}",
                        step_index=index,
                        details={"round": round_no},
                    )


@register_rule(
    "PLAN008",
    "no circuit transmits on a resource still being tuned",
    needs=("plan",),
)
def rule_reconfig_tuning(ctx: CheckContext) -> Iterator[Finding]:
    """Reconfiguration-overlap audit (:mod:`repro.optical.reconfig`).

    Inert unless the plan carries reconfiguration meta with a live tuning
    model. For optical plans the rule re-derives, from the recorded MRR
    claims alone, the tuning every round must expose: held claims cost
    nothing, claims whose channel was active in the previous round are
    *blocked* (wavelength exclusivity across the k/k+1 boundary forbids
    tuning onto a transmitting channel) and must be fully serial, and
    disjoint claims may hide behind the previous round's transmission
    window. A recorded exposure below that requirement means a circuit
    would transmit on a resource still being tuned. The plan's declared
    tuning total is cross-checked against the recorded per-round values.
    """
    plan = ctx.plan
    info = plan.meta.get("reconfig")
    if not isinstance(info, dict):
        return
    if plan.backend != "optical":
        # The analytic backend prices a claim-free closed-form exposure;
        # there is no per-round tuning schedule to audit.
        return
    from repro.optical.reconfig import ReconfigModel, split_tuning

    model = ReconfigModel(
        t_tune=info.get("t_tune", 0.0),
        tune_per_channel=info.get("tune_per_channel", 0.0),
    )
    if not model.enabled:
        return
    overlap = bool(info.get("overlap", True))
    prev_claims: tuple = ()
    prev_payload = 0.0
    recorded_total = 0.0
    for index, entry in enumerate(plan.entries):
        rounds = entry.payload if isinstance(entry.payload, tuple) else ()
        # Occurrence 0 audits the boundary inherited from the previous
        # entry; occurrence 1 (when the entry repeats) the self-repeat
        # boundary. Occurrences 2.. see the identical boundary as 1, so
        # two passes cover every boundary the fold charges.
        for occurrence in range(min(entry.count, 2)):
            weight = 1 if occurrence == 0 else entry.count - 1
            for round_no, rnd in enumerate(rounds):
                claims = getattr(rnd, "claims", ())
                if getattr(rnd, "n_circuits", 0) and not claims:
                    yield Finding(
                        "PLAN008", Severity.ERROR,
                        f"round {round_no} has circuits but no recorded MRR "
                        "claims — the tuning schedule cannot be audited",
                        step_index=index,
                        details={"round": round_no},
                    )
                    return
                blocked, free = split_tuning(model, prev_claims, claims)
                if overlap:
                    required = max(blocked, max(0.0, free - prev_payload))
                else:
                    required = max(blocked, free)
                recorded = getattr(rnd, "tune_s", 0.0)
                recorded_total += recorded * weight
                if recorded + 1e-12 * max(1.0, required) < required:
                    if recorded < blocked:
                        message = (
                            f"round {round_no}: circuits transmit on a "
                            "channel still being tuned — "
                            f"{blocked:.3e}s of tuning is blocked by the "
                            "previous round's active circuits but only "
                            f"{recorded:.3e}s is exposed"
                        )
                    else:
                        message = (
                            f"round {round_no}: exposed tuning "
                            f"{recorded:.3e}s under-prices the required "
                            f"{required:.3e}s"
                        )
                    yield Finding(
                        "PLAN008", Severity.ERROR, message,
                        step_index=index,
                        details={"round": round_no, "occurrence": occurrence},
                    )
                prev_claims = claims
                prev_payload = getattr(rnd, "max_payload_s", 0.0)
    declared = info.get("exposed_tune_s")
    if declared is not None and abs(declared - recorded_total) > 1e-9 * max(
        1.0, abs(declared)
    ):
        yield Finding(
            "PLAN008", Severity.ERROR,
            f"plan meta declares {declared:.6e}s of exposed tuning but the "
            f"recorded per-round values sum to {recorded_total:.6e}s",
        )


def iter_rule_docs() -> Iterable[tuple[str, str]]:
    """``(rule_id, title)`` pairs for the registered plan rules (docs/CLI)."""
    from repro.check.engine import all_rules

    return [(rule.rule_id, rule.title) for rule in all_rules()]
