"""Cross-cutting analyses on top of the substrates.

- :mod:`~repro.analysis.energy` — energy per All-reduce on the optical and
  electrical substrates (quantifies the paper's Sec 1 claim that optical
  interconnects spend less power).
- :mod:`~repro.analysis.scaling` — asymptotic scaling series (steps, time,
  bandwidth-latency decomposition) across cluster sizes for every
  algorithm, the data behind the Fig 6/7 trend discussion.
"""

from repro.analysis.energy import (
    ElectricalEnergyModel,
    EnergyBreakdown,
    OpticalEnergyModel,
    electrical_allreduce_energy,
    optical_allreduce_energy,
)
from repro.analysis.scaling import ScalingPoint, scaling_series

__all__ = [
    "ElectricalEnergyModel",
    "EnergyBreakdown",
    "OpticalEnergyModel",
    "ScalingPoint",
    "electrical_allreduce_energy",
    "optical_allreduce_energy",
    "scaling_series",
]
