"""Energy per All-reduce on the two substrates.

The paper motivates optical interconnects partly by power (Sec 1); this
module makes the comparison concrete with representative silicon-photonics
and datacenter-switch numbers (all overridable):

**Optical** (circuit-switched WDM): while a circuit is up, its wall power
is the comb-laser line (≈50 mW wall per wavelength at typical wall-plug
efficiency) plus thermal tuning of the Tx/Rx micro-rings (≈20 mW per
endpoint pair); data pays an O/E/O serialization energy (≈2 pJ/bit); each
reconfiguration round costs a control-plane transient.

**Electrical** (packet-switched fat-tree): the canonical per-bit
accounting — every router traversal costs switching energy (≈12 pJ/bit),
and each end host NIC costs serdes energy (≈5 pJ/bit per side).

Both models price a *schedule* through the substrates' own backend
``lower()`` stage (:mod:`repro.backend`), so the energy numbers come from
the very same lowered plans — routes, RWA rounds, fluid flows — that the
timing numbers do, and the two can never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.base import Schedule
from repro.electrical.config import ElectricalSystemConfig
from repro.electrical.network import ElectricalNetwork
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.util.validation import check_positive


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one collective, by component.

    Attributes:
        components: ``name -> joules``.
        payload_bits: Bits moved (for energy-per-bit reporting).
    """

    components: dict[str, float]
    payload_bits: float

    @property
    def total(self) -> float:
        """Total joules."""
        return sum(self.components.values())

    @property
    def pj_per_bit(self) -> float:
        """Picojoules per payload bit (∞ if no payload)."""
        if self.payload_bits == 0:
            return float("inf")
        return self.total / self.payload_bits * 1e12


@dataclass(frozen=True)
class OpticalEnergyModel:
    """Optical substrate energy parameters.

    Attributes:
        laser_wall_power_w: Wall power per active wavelength circuit.
        tuning_power_w: MRR thermal tuning per circuit (Tx + Rx rings).
        oeo_energy_per_bit: Serialization/deserialization energy.
        reconfig_energy_j: Control-plane energy per reconfiguration round.
    """

    laser_wall_power_w: float = 0.050
    tuning_power_w: float = 0.020
    oeo_energy_per_bit: float = 2.0e-12
    reconfig_energy_j: float = 1.0e-6

    def __post_init__(self) -> None:
        for name in (
            "laser_wall_power_w", "tuning_power_w",
            "oeo_energy_per_bit", "reconfig_energy_j",
        ):
            check_positive(name, getattr(self, name))


@dataclass(frozen=True)
class ElectricalEnergyModel:
    """Electrical substrate energy parameters.

    Attributes:
        switch_energy_per_bit: Per router traversal.
        nic_energy_per_bit: Per end-host NIC (charged twice per transfer).
    """

    switch_energy_per_bit: float = 12.0e-12
    nic_energy_per_bit: float = 5.0e-12

    def __post_init__(self) -> None:
        check_positive("switch_energy_per_bit", self.switch_energy_per_bit)
        check_positive("nic_energy_per_bit", self.nic_energy_per_bit)


def optical_allreduce_energy(
    schedule: Schedule,
    config: OpticalSystemConfig,
    model: OpticalEnergyModel | None = None,
    bytes_per_elem: float = 4.0,
) -> EnergyBreakdown:
    """Energy to run ``schedule`` on the optical ring.

    Active-power terms integrate over each circuit's actual duration as
    computed by the step-timing executor (every circuit of a round burns
    laser + tuning power for the round's payload time).
    """
    model = model or OpticalEnergyModel()
    net = OpticalRingNetwork(config, validate=False)
    plan = net.lower(schedule, bytes_per_elem)
    active_seconds = 0.0  # Σ over circuits of their duration
    rounds = 0
    payload_bytes = 0.0
    for entry in plan.entries:
        rounds += len(entry.payload) * entry.count
        for rnd in entry.payload:
            # Circuits stay configured for the whole round.
            active_seconds += rnd.max_payload_s * rnd.n_circuits * entry.count
            payload_bytes += rnd.payload_bytes * entry.count
    bits = payload_bytes * 8
    components = {
        "laser": active_seconds * model.laser_wall_power_w,
        "mrr_tuning": active_seconds * model.tuning_power_w,
        "oeo": bits * model.oeo_energy_per_bit,
        "reconfig": rounds * model.reconfig_energy_j,
    }
    return EnergyBreakdown(components=components, payload_bits=bits)


def electrical_allreduce_energy(
    schedule: Schedule,
    config: ElectricalSystemConfig,
    model: ElectricalEnergyModel | None = None,
    bytes_per_elem: float = 4.0,
) -> EnergyBreakdown:
    """Energy to run ``schedule`` on the electrical fat-tree."""
    model = model or ElectricalEnergyModel()
    net = ElectricalNetwork(config)
    plan = net.lower(schedule, bytes_per_elem)
    switch_bits = 0.0
    nic_bits = 0.0
    payload_bits = 0.0
    for entry in plan.entries:
        for n_routers, size in entry.payload.flows:
            bits = size * 8 * entry.count
            if bits == 0:
                continue
            payload_bits += bits
            switch_bits += bits * n_routers
            nic_bits += bits * 2  # sending and receiving host
    components = {
        "switching": switch_bits * model.switch_energy_per_bit,
        "nic": nic_bits * model.nic_energy_per_bit,
    }
    return EnergyBreakdown(components=components, payload_bits=payload_bits)
