"""Asymptotic scaling series: the data behind the Fig 6/7 trend claims.

For every algorithm, decompose communication time at each cluster size
into its **bandwidth term** (payload serialization) and **latency term**
(per-step overhead × steps). The paper's qualitative statements — "Ring
rises linearly", "the communication time for distributed DNN training is
primarily determined by the number of communication steps" — are exactly
statements about which term dominates; this module lets you check them at
any configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.steps import bt_steps, hring_steps, rd_steps, ring_steps, wrht_steps
from repro.core.timing import CostModel, algorithm_time
from repro.core.wavelengths import optimal_group_size
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ScalingPoint:
    """One (algorithm, N) decomposition.

    Attributes:
        algorithm: Algorithm name.
        n_nodes: Cluster size.
        steps: Communication steps.
        total_time: Seconds (full model).
        latency_time: Seconds from per-step overhead alone.
        bandwidth_time: Seconds from payload serialization alone.
    """

    algorithm: str
    n_nodes: int
    steps: int
    total_time: float
    latency_time: float
    bandwidth_time: float

    @property
    def latency_fraction(self) -> float:
        """Share of the total spent on per-step overhead."""
        return self.latency_time / self.total_time if self.total_time else 0.0


def _steps(algorithm: str, n: int, w: int, hring_m: int) -> int:
    if algorithm == "Ring":
        return ring_steps(n)
    if algorithm == "BT":
        return bt_steps(n)
    if algorithm == "RD":
        return rd_steps(n)
    if algorithm == "H-Ring":
        return hring_steps(n, min(hring_m, n), w)
    if algorithm == "WRHT":
        return wrht_steps(n, min(optimal_group_size(w), n), w)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def scaling_series(
    algorithm: str,
    nodes: Sequence[int],
    d_bytes: float,
    model: CostModel,
    w: int = 64,
    hring_m: int = 5,
) -> list[ScalingPoint]:
    """Decomposed timings for one algorithm across cluster sizes.

    The latency term is the model evaluated with a vanishing payload (the
    ``a·θ`` part); the bandwidth term is the remainder — the decomposition
    is exact because every model is affine in the payload.
    """
    check_positive("d_bytes", d_bytes)
    zero_overhead = CostModel(
        line_rate=model.line_rate,
        step_overhead=0.0,
        oeo_delay_per_packet=model.oeo_delay_per_packet,
        packet_bytes=model.packet_bytes,
    )
    points = []
    for n in nodes:
        kwargs = {"hring_m": min(hring_m, n), "w": w}
        total = algorithm_time(algorithm, n, d_bytes, model, **kwargs)
        bandwidth = algorithm_time(algorithm, n, d_bytes, zero_overhead, **kwargs)
        steps = _steps(algorithm, n, w, hring_m)
        points.append(
            ScalingPoint(
                algorithm=algorithm,
                n_nodes=n,
                steps=steps,
                total_time=total,
                latency_time=total - bandwidth,
                bandwidth_time=bandwidth,
            )
        )
    return points
