"""Unit conversion helpers.

All simulator-internal quantities use SI base units: seconds for time and
bytes for data volume. Rates are bytes/second. The helpers below convert the
paper's mixed units (Gbit/s line rates, µs delays, fs per-packet conversion
delays, MB model sizes) into base units exactly once, at configuration time,
so the hot simulation paths never multiply by unit constants.
"""

from __future__ import annotations

# Binary size prefixes (bytes).
KIBI = 1024
MEBI = 1024**2
GIBI = 1024**3

# Time prefixes (seconds).
NANOSECOND = 1e-9
MICROSECOND = 1e-6
MILLISECOND = 1e-3
FEMTOSECOND = 1e-15

# One gigabit per second expressed in bytes per second.
GBPS = 1e9 / 8.0

_BITS_PER_BYTE = 8


def bytes_to_bits(n_bytes: float) -> float:
    """Convert a byte count to bits."""
    return n_bytes * _BITS_PER_BYTE


def bits_to_bytes(n_bits: float) -> float:
    """Convert a bit count to bytes."""
    return n_bits / _BITS_PER_BYTE


def gbit_per_s(rate: float) -> float:
    """Return ``rate`` gigabits/second as bytes/second."""
    return rate * GBPS


def gbyte_per_s(rate: float) -> float:
    """Return ``rate`` gigabytes/second as bytes/second."""
    return rate * 1e9


def mbyte(n: float) -> float:
    """Return ``n`` megabytes (1e6 bytes) as bytes."""
    return n * 1e6


def usec(n: float) -> float:
    """Return ``n`` microseconds as seconds."""
    return n * MICROSECOND


def bytes_per_second(volume_bytes: float, seconds: float) -> float:
    """Average rate for transferring ``volume_bytes`` in ``seconds``.

    Raises:
        ValueError: if ``seconds`` is not positive.
    """
    if seconds <= 0:
        raise ValueError(f"duration must be positive, got {seconds!r}")
    return volume_bytes / seconds


def format_bytes(n_bytes: float) -> str:
    """Human-readable byte count (decimal prefixes, 3 significant digits)."""
    value = float(n_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1000.0 or unit == "TB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.3g} {unit}"
        value /= 1000.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Human-readable duration picked from {s, ms, µs, ns}."""
    if seconds == 0:
        return "0 s"
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:.4g} s"
    if magnitude >= MILLISECOND:
        return f"{seconds / MILLISECOND:.4g} ms"
    if magnitude >= MICROSECOND:
        return f"{seconds / MICROSECOND:.4g} us"
    return f"{seconds / NANOSECOND:.4g} ns"
