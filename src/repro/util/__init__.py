"""Shared utilities: unit conversions, argument validation, ASCII tables.

These helpers are deliberately dependency-free (stdlib only) so that every
other subpackage — the DES kernel, the optical/electrical substrates, the
collective schedule builders — can import them without cycles.
"""

from repro.util.units import (
    GBPS,
    GIBI,
    KIBI,
    MEBI,
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    bits_to_bytes,
    bytes_per_second,
    bytes_to_bits,
    format_bytes,
    format_seconds,
    gbit_per_s,
    gbyte_per_s,
    mbyte,
    usec,
)
from repro.util.validation import (
    check_in_range,
    check_positive,
    check_positive_int,
    check_power_of_two,
)
from repro.util.tables import AsciiTable

__all__ = [
    "AsciiTable",
    "GBPS",
    "GIBI",
    "KIBI",
    "MEBI",
    "MICROSECOND",
    "MILLISECOND",
    "NANOSECOND",
    "bits_to_bytes",
    "bytes_per_second",
    "bytes_to_bits",
    "check_in_range",
    "check_positive",
    "check_positive_int",
    "check_power_of_two",
    "format_bytes",
    "format_seconds",
    "gbit_per_s",
    "gbyte_per_s",
    "mbyte",
    "usec",
]
