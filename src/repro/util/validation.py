"""Argument validation helpers with consistent error messages.

Every public constructor in the library validates its inputs eagerly with
these helpers so that configuration mistakes surface at build time rather
than as nonsense simulation output thousands of events later.
"""

from __future__ import annotations

from typing import Any


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_positive_int(name: str, value: Any) -> int:
    """Require an integral value >= 1; return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Require ``lo <= value <= hi``; return it for chaining."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_power_of_two(name: str, value: int) -> int:
    """Require ``value`` to be a positive power of two; return it."""
    check_positive_int(name, value)
    if value & (value - 1) != 0:
        raise ValueError(f"{name} must be a power of two, got {value!r}")
    return value


def check_odd(name: str, value: int) -> int:
    """Require an odd positive integer; return it."""
    check_positive_int(name, value)
    if value % 2 == 0:
        raise ValueError(f"{name} must be odd, got {value!r}")
    return value
