"""Minimal ASCII table renderer for benchmark and CLI output.

The benchmark harness prints the same rows the paper's tables/figures report;
this renderer keeps that output aligned and diff-friendly without pulling in
a formatting dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class AsciiTable:
    """Accumulate rows and render a fixed-width ASCII table.

    Example:
        >>> t = AsciiTable(["algo", "steps"])
        >>> t.add_row(["Ring", 2046])
        >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
        algo | steps
        -----+------
        Ring |  2046
    """

    def __init__(self, headers: Sequence[str]) -> None:
        if not headers:
            raise ValueError("headers must be non-empty")
        self._headers = [str(h) for h in headers]
        self._rows: list[list[str]] = []

    @property
    def n_rows(self) -> int:
        """Number of data rows added so far."""
        return len(self._rows)

    def add_row(self, row: Iterable[object]) -> None:
        """Append one row; cells are stringified, floats with 4 sig figs."""
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(f"{cell:.4g}")
            else:
                cells.append(str(cell))
        if len(cells) != len(self._headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self._headers)} columns"
            )
        self._rows.append(cells)

    def render(self) -> str:
        """Render the table as a string (no trailing newline)."""
        widths = [len(h) for h in self._headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(h.ljust(w) for h, w in zip(self._headers, widths))
        rule = "-+-".join("-" * w for w in widths)
        lines = [header, rule]
        for row in self._rows:
            lines.append(
                " | ".join(
                    cell.rjust(w) if _is_numeric(cell) else cell.ljust(w)
                    for cell, w in zip(row, widths)
                )
            )
        return "\n".join(line.rstrip() for line in lines)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell)
    except ValueError:
        return False
    return True
