"""Pipelined (bucketed) WRHT — an extension beyond the paper.

WRHT moves the full gradient ``d`` in every step, so its ``2⌈log_m N⌉``
steps cost ``θ·d/B`` of pure serialization. Splitting the gradient into
``B`` equal buckets and pipelining them through the hierarchy (bucket ``b``
enters level ``ℓ`` at step ``ℓ + b − 1``) overlaps the levels: total steps
grow to ``2(L + B − 1)`` (minus one with the all-to-all shortcut) but each
step only carries ``d/B``, giving

    T_pipe = (2(L + B − 1) − s) · (d/(B·rate) + a)

against the paper's ``(2L − s)(d/rate + a)`` — up to ``L×`` less
serialization at the cost of more reconfigurations, with a closed-form
optimal bucket count where the two terms balance.

The catch the paper's wavelength analysis makes visible: while levels
overlap, *every* active level needs its own wavelengths on shared fiber
segments (a level-2 collect crosses the level-1 groups beneath it), so the
steady-state demand is about ``Σ_ℓ ⌊m/2⌋`` instead of ``⌊m/2⌋``. The
planner caps the group size accordingly, and the optical executor's RWA
enforces it constructively — an infeasible overlap simply costs extra
rounds rather than producing a wrong schedule.

The generated schedule is verified by the same exact-sum executor as every
other schedule in the library (buckets are element ranges, so correctness
is checked per bucket automatically).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.collectives.base import CommStep, Schedule, Transfer, compress_steps
from repro.collectives.ring import chunk_bounds
from repro.core.planner import WrhtPlan, plan_wrht
from repro.core.timing import CostModel
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class PipelinedPlan:
    """A WRHT plan plus a bucket count.

    Attributes:
        base: The underlying :class:`~repro.core.planner.WrhtPlan`.
        n_buckets: Pipeline depth B >= 1 (B=1 degenerates to plain WRHT).
    """

    base: WrhtPlan
    n_buckets: int

    def __post_init__(self) -> None:
        check_positive_int("n_buckets", self.n_buckets)

    @property
    def theta(self) -> int:
        """Total pipelined steps."""
        l = self.base.n_levels
        b = self.n_buckets
        reduce_steps = l + b - 1
        bcast_levels = l - 1 if self.base.alltoall else l
        bcast_steps = (bcast_levels + b - 1) if bcast_levels else 0
        return reduce_steps + bcast_steps

    @property
    def peak_wavelengths(self) -> int:
        """Steady-state demand: every concurrently active level's need summed.

        The final level counts as its all-to-all requirement ``⌈m*²/8⌉``
        when the plan uses the shortcut (the exchange crosses the lower
        levels' segments just like a plain collect would).
        """
        from repro.core.wavelengths import alltoall_wavelengths

        per_level = [lv.max_group_size // 2 for lv in self.base.levels]
        if per_level and self.base.alltoall:
            per_level[-1] = alltoall_wavelengths(self.base.m_star)
        overlap = min(self.base.n_levels, self.n_buckets)
        return sum(sorted(per_level, reverse=True)[:overlap]) if per_level else 0


def pipelined_wrht_time(plan: PipelinedPlan, d_bytes: float, model: CostModel) -> float:
    """Analytical communication time of pipelined WRHT."""
    if d_bytes < 0:
        raise ValueError(f"d_bytes must be >= 0, got {d_bytes!r}")
    bucket = d_bytes / plan.n_buckets
    return plan.theta * model.step_time(bucket)


def optimal_bucket_count(
    plan: WrhtPlan, d_bytes: float, model: CostModel, max_buckets: int = 4096
) -> int:
    """Bucket count minimizing the pipelined time model for ``plan``.

    With ``θ(B) = c + 2B`` (``c`` collects the level terms, shortcut
    included), the pipelined time ``(c + 2B)(d/(B·rate) + a)`` has its
    continuous minimum at ``B* = sqrt(c·d / (2·rate·a))``; the exact
    integer optimum is taken from its neighbourhood.
    """
    if d_bytes < 0:
        raise ValueError(f"d_bytes must be >= 0, got {d_bytes!r}")
    check_positive_int("max_buckets", max_buckets)
    if d_bytes == 0:
        return 1

    def cost(b: int) -> float:
        return pipelined_wrht_time(PipelinedPlan(plan, b), d_bytes, model)

    c = PipelinedPlan(plan, 1).theta - 2  # θ(B) = c + 2B for B >= 1
    if c <= 0:
        # θ grows one-for-one (or faster) with B against a fixed payload
        # split — no pipelining win is possible.
        return 1
    if model.step_overhead == 0:
        return max_buckets
    continuous = math.sqrt(
        c * d_bytes / (2.0 * model.line_rate * model.step_overhead)
    )
    candidates = {1, max_buckets}
    for b in (math.floor(continuous), math.ceil(continuous)):
        if 1 <= b <= max_buckets:
            candidates.add(b)
    return min(sorted(candidates), key=cost)


def build_pipelined_wrht_schedule(
    n_nodes: int,
    total_elems: int,
    n_wavelengths: int = 64,
    n_buckets: int = 4,
    m: int | None = None,
    plan: WrhtPlan | None = None,
) -> Schedule:
    """Build the pipelined WRHT schedule.

    Args:
        n_nodes: Ring size N >= 2.
        total_elems: Gradient vector length (buckets are element ranges).
        n_wavelengths: Wavelength budget for planning.
        n_buckets: Pipeline depth B.
        m: Optional forced group size.
        plan: Optional pre-resolved base plan.

    Returns:
        A :class:`Schedule` with ``meta["pipelined_plan"]`` attached.
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("total_elems", total_elems)
    check_positive_int("n_buckets", n_buckets)
    if n_nodes == 1:
        from repro.collectives.base import singleton_schedule

        return singleton_schedule("wrht-pipe", total_elems)
    if plan is None:
        plan = plan_wrht(n_nodes, n_wavelengths, m=m)
    pipe = PipelinedPlan(base=plan, n_buckets=n_buckets)
    buckets = chunk_bounds(total_elems, n_buckets)
    levels = plan.levels
    n_levels = len(levels)

    def collect_transfers(level_idx: int, lo: int, hi: int) -> list[Transfer]:
        level = levels[level_idx]
        out = []
        if plan.alltoall and level_idx == n_levels - 1:
            population = level.population
            return [
                Transfer(a, b, lo, hi, "sum")
                for a in population
                for b in population
                if a != b
            ]
        for group in level.groups:
            for member in group.non_representatives:
                out.append(Transfer(member, group.representative, lo, hi, "sum"))
        return out

    def broadcast_transfers(level_idx: int, lo: int, hi: int) -> list[Transfer]:
        level = levels[level_idx]
        out = []
        for group in level.groups:
            for member in group.non_representatives:
                out.append(Transfer(group.representative, member, lo, hi, "copy"))
        return out

    steps: list[CommStep] = []
    # Reduce pipeline: bucket b enters level ℓ (0-based) at step ℓ + b.
    for t in range(n_levels + n_buckets - 1):
        transfers: list[Transfer] = []
        for level_idx in range(n_levels):
            b = t - level_idx
            if 0 <= b < n_buckets:
                lo, hi = buckets[b]
                transfers.extend(collect_transfers(level_idx, lo, hi))
        steps.append(CommStep(tuple(transfers), stage="reduce", level=0))
    # Broadcast pipeline (levels reversed; skips the last level with the
    # all-to-all shortcut since every representative already has the sum).
    bcast_levels = list(range(n_levels - 2, -1, -1)) if plan.alltoall else list(
        range(n_levels - 1, -1, -1)
    )
    for t in range(len(bcast_levels) + n_buckets - 1 if bcast_levels else 0):
        transfers = []
        for pos, level_idx in enumerate(bcast_levels):
            b = t - pos
            if 0 <= b < n_buckets:
                lo, hi = buckets[b]
                transfers.extend(broadcast_transfers(level_idx, lo, hi))
        steps.append(CommStep(tuple(transfers), stage="broadcast", level=0))

    if len(steps) != pipe.theta:
        raise AssertionError(
            f"pipelined schedule has {len(steps)} steps, plan says {pipe.theta}"
        )
    return Schedule(
        algorithm="wrht-pipe",
        n_nodes=n_nodes,
        total_elems=total_elems,
        steps=steps,
        timing_profile=compress_steps(steps),
        meta={
            "profile_exact": total_elems % n_buckets == 0,
            "plan": plan,
            "pipelined_plan": pipe,
        },
    )
