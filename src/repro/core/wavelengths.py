"""Wavelength-requirement arithmetic (Sec 4.1.2 and Lemma 1).

Three facts drive the whole scheme:

1. A group of ``m`` nodes collecting to its middle representative needs
   ``⌊m/2⌋`` wavelengths: the two sides collect concurrently in opposite
   ring directions, and within a side the transmissions overlap on the
   segments adjacent to the representative, so each distance rank needs its
   own wavelength. The same wavelength set is reused by the opposite side
   (separate fiber direction) and by every other group (disjoint segments).
2. An all-to-all exchange among ``k`` evenly spread ring nodes needs
   ``⌈k²/8⌉`` wavelengths (one-stage ring model of Liang & Shen [13], cited
   by the paper for the final reduce step).
3. Therefore, with ``w`` wavelengths available, the largest usable group is
   ``m = 2w + 1`` — Lemma 1's optimum, since steps ``2⌈log_m N⌉`` decrease
   monotonically in ``m``.
"""

from __future__ import annotations

import math

from repro.util.validation import check_positive_int


def group_wavelengths(m: int) -> int:
    """Wavelengths needed for one group of ``m`` nodes to collect: ``⌊m/2⌋``."""
    check_positive_int("m", m)
    return m // 2


def alltoall_wavelengths(k: int) -> int:
    """Wavelengths for a one-step all-to-all among ``k`` ring nodes: ``⌈k²/8⌉``.

    For ``k == 1`` no communication happens, so the requirement is 0.
    """
    check_positive_int("k", k)
    if k == 1:
        return 0
    return math.ceil(k * k / 8)


def optimal_group_size(w: int) -> int:
    """Largest group size supportable with ``w`` wavelengths: ``2w + 1`` (Lemma 1)."""
    check_positive_int("w", w)
    return 2 * w + 1


def max_group_size_for_wavelengths(w: int) -> int:
    """Alias of :func:`optimal_group_size`; kept for readability at call sites
    that express a *constraint* rather than an *optimum*."""
    return optimal_group_size(w)


def reduce_levels(n_nodes: int, m: int) -> int:
    """Number of reduce levels ``⌈log_m N⌉`` (0 for a single node).

    Computed by iterated integer division rather than floating-point logs so
    that boundary cases (e.g. N an exact power of m) are exact.
    """
    check_positive_int("n_nodes", n_nodes)
    if m < 2:
        raise ValueError(f"group size m must be >= 2, got {m!r}")
    levels = 0
    remaining = n_nodes
    while remaining > 1:
        remaining = math.ceil(remaining / m)
        levels += 1
    return levels


def representatives_at_last_level(n_nodes: int, m: int) -> int:
    """``m* = ⌈N / m^(⌈log_m N⌉ - 1)⌉`` — reps entering the final reduce step.

    Computed by iterating the actual grouping recurrence (ceil division per
    level), which also matches :func:`hierarchical_grouping`.
    """
    levels = reduce_levels(n_nodes, m)
    if levels == 0:
        return 1
    remaining = n_nodes
    for _ in range(levels - 1):
        remaining = math.ceil(remaining / m)
    return remaining


def wrht_wavelength_requirement(n_nodes: int, m: int) -> int:
    """Peak wavelength demand of a WRHT run with group size ``m``.

    The grouping steps need ``⌊m/2⌋`` each; the final step needs either
    ``⌊m*/2⌋`` (plain collect) or ``⌈m*²/8⌉`` (all-to-all). This returns the
    demand assuming the *cheaper legal* final step — i.e. the minimum number
    of wavelengths for which the schedule is feasible at all (the planner
    separately decides whether the all-to-all shortcut is worth it).
    """
    levels = reduce_levels(n_nodes, m)
    if levels == 0:
        return 0
    base = group_wavelengths(min(m, n_nodes))
    m_star = representatives_at_last_level(n_nodes, m)
    return max(base, group_wavelengths(m_star))


def alltoall_feasible(n_nodes: int, m: int, w: int) -> bool:
    """Whether the final reduce step can be an all-to-all under ``w`` wavelengths."""
    check_positive_int("w", w)
    m_star = representatives_at_last_level(n_nodes, m)
    if m_star <= 1:
        return False
    return alltoall_wavelengths(m_star) <= w
