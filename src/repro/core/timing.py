"""Analytical communication-time models (Eq 6 of Sec 4.3 and equivalents).

The paper's model: ``T_comm = d·θ/B + a·θ`` where ``d`` is the per-step
payload, ``B`` the per-wavelength rate, ``a`` the per-step overhead (MRR
reconfiguration + O/E/O conversion), and ``θ`` the step count. The payload
``d`` differs per algorithm:

- WRHT and BT move the **full** gradient ``d`` every step (reduction keeps
  the size constant).
- Ring moves ``d/N`` per step (reduce-scatter / all-gather chunks).
- Recursive Doubling moves the full ``d`` every exchange.
- H-Ring moves ``d/m`` in intra-group steps and ``d·m/N`` in inter-group
  steps (see DESIGN.md §6 for the decomposition; the paper only gives the
  step count, formulas from the standard hierarchical-ring construction).

Every function here returns seconds and takes an explicit
:class:`CostModel`, so the same code produces the "strict" (B = 40 Gbit/s)
and "calibrated" (B = 40 GB/s, see DESIGN.md §6) variants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.steps import (
    bt_steps,
    hring_steps,
    rd_steps,
    ring_steps,
    scring_arc_count,
    wrht_steps,
)
from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class CostModel:
    """Parameters of the analytical time model.

    Attributes:
        line_rate: Per-wavelength payload rate in bytes/second (``B``).
        step_overhead: Per-step constant ``a`` in seconds (MRR
            reconfiguration delay; 25 µs in Table 2).
        oeo_delay_per_packet: O/E/O conversion delay per packet in seconds
            (497 fs in Table 2; negligible but modeled).
        packet_bytes: Packet size used for the O/E/O term (72 B in Table 2).
    """

    line_rate: float
    step_overhead: float
    oeo_delay_per_packet: float = 0.0
    packet_bytes: int = 72

    def __post_init__(self) -> None:
        check_positive("line_rate", self.line_rate)
        if self.step_overhead < 0:
            raise ValueError(f"step_overhead must be >= 0, got {self.step_overhead!r}")
        if self.oeo_delay_per_packet < 0:
            raise ValueError(
                f"oeo_delay_per_packet must be >= 0, got {self.oeo_delay_per_packet!r}"
            )
        check_positive_int("packet_bytes", self.packet_bytes)

    def payload_time(self, payload_bytes: float) -> float:
        """Serialization + O/E/O time for one payload on one wavelength."""
        if payload_bytes < 0:
            raise ValueError(f"payload must be >= 0, got {payload_bytes!r}")
        n_packets = math.ceil(payload_bytes / self.packet_bytes)
        return payload_bytes / self.line_rate + n_packets * self.oeo_delay_per_packet

    def payload_times(self, payload_bytes):
        """Vectorized :meth:`payload_time` over a float64 numpy array.

        Bit-identical to the scalar path element-wise: the division, the
        packet-count ceiling and the multiply are the same IEEE-754
        operations whether evaluated by ``math`` or ``numpy`` (packet
        counts stay far below 2**53, where ``float(math.ceil(x)) ==
        np.ceil(x)`` exactly). Used by the executors to price a whole
        step's transfers in one pass instead of a per-transfer Python loop.
        """
        import numpy as np

        payload_bytes = np.asarray(payload_bytes, dtype=np.float64)
        if payload_bytes.size and float(payload_bytes.min()) < 0:
            raise ValueError("payloads must be >= 0")
        n_packets = np.ceil(payload_bytes / self.packet_bytes)
        return payload_bytes / self.line_rate + n_packets * self.oeo_delay_per_packet

    def step_time(self, payload_bytes: float) -> float:
        """One full communication step: payload plus the constant overhead."""
        return self.payload_time(payload_bytes) + self.step_overhead


def wrht_time(
    n_nodes: int, d_bytes: float, model: CostModel, m: int, w: int | None = None
) -> float:
    """WRHT communication time: ``θ · (d/B + a)`` (Eq 6).

    Args:
        n_nodes: Ring size N.
        d_bytes: Gradient size per node (bytes).
        model: Cost parameters.
        m: Group size.
        w: Wavelengths available (``None`` = unconstrained all-to-all check).
    """
    theta = wrht_steps(n_nodes, m, w)
    return theta * model.step_time(d_bytes)


def ring_time(n_nodes: int, d_bytes: float, model: CostModel) -> float:
    """Ring All-reduce time: ``2(N−1) · (d/(N·B) + a)``."""
    check_positive_int("n_nodes", n_nodes)
    if n_nodes == 1:
        return 0.0
    chunk = d_bytes / n_nodes
    return ring_steps(n_nodes) * model.step_time(chunk)


def bt_time(n_nodes: int, d_bytes: float, model: CostModel) -> float:
    """Binary-tree All-reduce time: ``2⌈log₂N⌉ · (d/B + a)``."""
    return bt_steps(n_nodes) * model.step_time(d_bytes)


def rd_time(n_nodes: int, d_bytes: float, model: CostModel) -> float:
    """Recursive-doubling All-reduce time: full-vector exchange per step."""
    return rd_steps(n_nodes) * model.step_time(d_bytes)


def swing_time(n_nodes: int, d_bytes: float, model: CostModel) -> float:
    """Swing All-reduce time: recursive-halving payloads, ``2⌊log₂N⌋`` steps.

    Step ``s`` of the reduce-scatter (and its all-gather mirror) moves
    ``d/2^s``, so the total is ``Σ_{s=1}^{⌊log₂N⌋} 2·(d/(2^s·B) + a)`` —
    ≈2d of traffic like Ring, at logarithmically many reconfigurations.
    Non-powers of two add the two full-vector MPICH fold steps.
    """
    check_positive_int("n_nodes", n_nodes)
    if n_nodes == 1:
        return 0.0
    floor_log = n_nodes.bit_length() - 1
    total = 0.0
    if n_nodes != 1 << floor_log:
        total += 2 * model.step_time(d_bytes)
    for s in range(1, floor_log + 1):
        total += 2 * model.step_time(d_bytes / (1 << s))
    return total


def scring_time(
    n_nodes: int, d_bytes: float, model: CostModel, w: int = 64, pipeline: int = 1
) -> float:
    """Short-circuiting-ring time: ``d/N`` chain hops plus hub chord steps.

    With ``A = min(2·pipeline, N−1)`` arcs per chunk and longest arc
    ``L = ⌈(N−1)/A⌉``, the ``2(L−1)`` chain steps move one ``d/N`` chunk
    per link, and the two hub steps (chord delivery to the owner and its
    multicast mirror) concentrate ``A`` chunks on one node — serialized
    over the ``w`` wavelengths as ``(d/N)·⌈A/w⌉``.
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("w", w)
    if n_nodes == 1:
        return 0.0
    arcs = scring_arc_count(n_nodes, pipeline)
    longest = math.ceil((n_nodes - 1) / arcs)
    chunk = d_bytes / n_nodes
    hub = chunk * math.ceil(arcs / w)
    return 2 * (longest - 1) * model.step_time(chunk) + 2 * model.step_time(hub)


def hring_time(n_nodes: int, d_bytes: float, model: CostModel, m: int, w: int) -> float:
    """H-Ring All-reduce time.

    Step count is the Table 1 closed form (so the ``a`` overhead matches the
    paper exactly); payloads follow the standard hierarchical decomposition:
    two intra-group ring phases at ``d/m`` per step and one inter-group ring
    phase at ``d·m/N`` per step, plus a final intra-group broadcast at full
    ``d`` when ``⌈m/w⌉ = 1``.
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("m", m)
    check_positive_int("w", w)
    if n_nodes == 1:
        return 0.0
    if m > n_nodes:
        raise ValueError(f"group size m={m} exceeds n_nodes={n_nodes}")
    total_steps = hring_steps(n_nodes, m, w)
    n_groups = math.ceil(n_nodes / m)
    serialization = math.ceil(m / w)
    intra_steps_per_phase = (m - 1) * (1 if serialization == 1 else 2)
    inter_steps = max(0, 2 * (n_groups - 1))
    # Whatever steps the closed form counts beyond intra+inter are broadcast
    # -style steps carrying the full gradient.
    bcast_steps = max(0, total_steps - 2 * intra_steps_per_phase - inter_steps)
    payload_time = (
        2 * intra_steps_per_phase * model.payload_time(d_bytes / m)
        + inter_steps * model.payload_time(d_bytes * m / n_nodes)
        + bcast_steps * model.payload_time(d_bytes)
    )
    return payload_time + total_steps * model.step_overhead


@dataclass(frozen=True)
class AnalyticStepClass:
    """One homogeneous class of steps in an algorithm's closed form.

    The analytic decomposition of ``algorithm_time``: each class is
    ``count`` steps each moving ``payload_bytes`` per wavelength, so the
    algorithm's total is ``Σ count · step_time(payload_bytes)``. Used by
    the analytic backend to report a per-step timeline while the closed
    form stays authoritative for the total.

    Attributes:
        stage: Human-readable stage label (``"reduce"``, ``"exchange"``,
            ``"intra"``, ``"inter"``, ``"broadcast"``).
        count: Steps in the class.
        payload_bytes: Per-step payload on the critical path (bytes).
    """

    stage: str
    count: int
    payload_bytes: float


def analytic_profile(
    name: str,
    n_nodes: int,
    d_bytes: float,
    *,
    wrht_m: int | None = None,
    hring_m: int = 5,
    w: int = 64,
    scring_pipeline: int = 1,
) -> tuple[AnalyticStepClass, ...]:
    """Step-class decomposition matching :func:`algorithm_time`.

    Returns the homogeneous step classes whose
    ``Σ count · step_time(payload)`` equals the corresponding closed form
    (same defaulting rules for ``wrht_m``). Empty for ``n_nodes == 1``.
    """
    check_positive_int("n_nodes", n_nodes)
    if n_nodes == 1:
        return ()
    if name == "Ring":
        return (
            AnalyticStepClass("reduce", ring_steps(n_nodes), d_bytes / n_nodes),
        )
    if name == "BT":
        return (AnalyticStepClass("reduce", bt_steps(n_nodes), d_bytes),)
    if name == "RD":
        return (AnalyticStepClass("exchange", rd_steps(n_nodes), d_bytes),)
    if name == "Swing":
        floor_log = n_nodes.bit_length() - 1
        fold = n_nodes != 1 << floor_log
        classes = []
        if fold:
            classes.append(AnalyticStepClass("reduce", 1, d_bytes))
        for s in range(1, floor_log + 1):
            classes.append(AnalyticStepClass("reduce", 1, d_bytes / (1 << s)))
        for s in range(floor_log, 0, -1):
            classes.append(AnalyticStepClass("broadcast", 1, d_bytes / (1 << s)))
        if fold:
            classes.append(AnalyticStepClass("broadcast", 1, d_bytes))
        return tuple(classes)
    if name == "SCRing":
        check_positive_int("w", w)
        arcs = scring_arc_count(n_nodes, scring_pipeline)
        longest = math.ceil((n_nodes - 1) / arcs)
        chunk = d_bytes / n_nodes
        hub = chunk * math.ceil(arcs / w)
        classes = []
        if longest > 1:
            classes.append(AnalyticStepClass("reduce", longest - 1, chunk))
        classes.append(AnalyticStepClass("reduce", 1, hub))
        classes.append(AnalyticStepClass("broadcast", 1, hub))
        if longest > 1:
            classes.append(AnalyticStepClass("broadcast", longest - 1, chunk))
        return tuple(classes)
    if name == "WRHT":
        from repro.core.wavelengths import optimal_group_size

        m = wrht_m if wrht_m is not None else min(optimal_group_size(w), n_nodes)
        return (AnalyticStepClass("reduce", wrht_steps(n_nodes, m, w), d_bytes),)
    if name == "H-Ring":
        m = hring_m
        check_positive_int("m", m)
        check_positive_int("w", w)
        if m > n_nodes:
            raise ValueError(f"group size m={m} exceeds n_nodes={n_nodes}")
        total_steps = hring_steps(n_nodes, m, w)
        n_groups = math.ceil(n_nodes / m)
        serialization = math.ceil(m / w)
        intra_steps_per_phase = (m - 1) * (1 if serialization == 1 else 2)
        inter_steps = max(0, 2 * (n_groups - 1))
        bcast_steps = max(0, total_steps - 2 * intra_steps_per_phase - inter_steps)
        classes = []
        if intra_steps_per_phase:
            classes.append(
                AnalyticStepClass("intra", 2 * intra_steps_per_phase, d_bytes / m)
            )
        if inter_steps:
            classes.append(
                AnalyticStepClass("inter", inter_steps, d_bytes * m / n_nodes)
            )
        if bcast_steps:
            classes.append(AnalyticStepClass("broadcast", bcast_steps, d_bytes))
        return tuple(classes)
    raise ValueError(f"unknown algorithm {name!r}")


def reconfig_exposed_time(
    classes: tuple[AnalyticStepClass, ...],
    model: CostModel,
    tune_s: float,
    overlap: bool = True,
) -> float:
    """Exposed MRR tuning over an analytic step-class decomposition.

    The closed-form counterpart of the optical backend's per-claim pass
    (:mod:`repro.optical.reconfig`): the first step pays the full retune
    ``tune_s``; every later step's tuning races the previous step's
    transmission, exposing ``max(0, tune_s − prev_payload_time)`` — the
    ``max(transmission, exposed-tuning)`` recurrence, collapsed per class
    into a boundary term plus ``(count−1)`` identical intra-class terms.
    Without ``overlap`` every step pays ``tune_s`` serially.

    The closed form has no concrete wavelength assignments, so it prices
    the base per-MRR retune only (no per-wavelength-distance term and no
    claim holding) — a conservative upper bound on the simulated backend's
    claim-aware exposure.
    """
    if tune_s < 0:
        raise ValueError(f"tune_s must be >= 0, got {tune_s!r}")
    if tune_s == 0 or not classes:
        return 0.0
    total = 0.0
    prev_payload: float | None = None
    for cls in classes:
        payload = model.payload_time(cls.payload_bytes)
        if prev_payload is None:
            total += tune_s  # nothing to overlap before the first step
        elif overlap:
            total += max(0.0, tune_s - prev_payload)
        else:
            total += tune_s
        if cls.count > 1:
            intra = max(0.0, tune_s - payload) if overlap else tune_s
            total += (cls.count - 1) * intra
        prev_payload = payload
    return total


def algorithm_time(
    name: str,
    n_nodes: int,
    d_bytes: float,
    model: CostModel,
    *,
    wrht_m: int | None = None,
    hring_m: int = 5,
    w: int = 64,
    scring_pipeline: int = 1,
    tune_s: float = 0.0,
    overlap_tuning: bool = True,
) -> float:
    """Dispatch helper used by the experiment runner.

    Args:
        name: One of ``"Ring"``, ``"H-Ring"``, ``"BT"``, ``"RD"``, ``"WRHT"``,
            ``"Swing"``, ``"SCRing"``.
        n_nodes: N.
        d_bytes: Gradient bytes per node.
        model: Cost parameters.
        wrht_m: WRHT group size (defaults to Lemma 1's ``min(2w+1, N)``).
        hring_m: H-Ring intra-group size.
        w: Wavelengths available.
        scring_pipeline: SCRing arc-count knob (``A = min(2·pipeline, N−1)``).
        tune_s: Per-MRR wavelength tuning time; when positive, the exposed
            tuning of :func:`reconfig_exposed_time` is added to the closed
            form. 0 (the default) leaves every total bit-identical.
        overlap_tuning: Overlap each step's tuning with the previous
            step's transmission (the recurrence above) instead of paying
            it serially.
    """
    if name == "Ring":
        total = ring_time(n_nodes, d_bytes, model)
    elif name == "BT":
        total = bt_time(n_nodes, d_bytes, model)
    elif name == "RD":
        total = rd_time(n_nodes, d_bytes, model)
    elif name == "Swing":
        total = swing_time(n_nodes, d_bytes, model)
    elif name == "SCRing":
        total = scring_time(n_nodes, d_bytes, model, w, scring_pipeline)
    elif name == "H-Ring":
        total = hring_time(n_nodes, d_bytes, model, hring_m, w)
    elif name == "WRHT":
        from repro.core.wavelengths import optimal_group_size

        m = wrht_m if wrht_m is not None else min(optimal_group_size(w), n_nodes)
        total = wrht_time(n_nodes, d_bytes, model, m, w)
    else:
        raise ValueError(f"unknown algorithm {name!r}")
    if tune_s > 0 and n_nodes > 1:
        classes = analytic_profile(
            name, n_nodes, d_bytes,
            wrht_m=wrht_m, hring_m=hring_m, w=w, scring_pipeline=scring_pipeline,
        )
        total += reconfig_exposed_time(classes, model, tune_s, overlap_tuning)
    return total
