"""Hierarchical ring grouping with middle-node representatives (Sec 4.1.1).

WRHT partitions the ring into contiguous groups of (up to) ``m`` nodes. The
*middle* node of each group is its representative: members stream to it from
both sides, which is what lets one wavelength be reused per distance rank on
each side (each node has a Tx/Rx set per ring direction). Representatives of
level ``i`` become the member population of level ``i+1`` until one group
remains.

Positions are ring indices ``0..N-1``; groups are contiguous runs of the
*current level's population* (which, beyond level 1, is itself spread around
the ring), so group fiber spans never overlap and wavelengths can be reused
across groups — the "wavelength reused" part of the scheme's name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class Group:
    """One contiguous group of ring nodes with its representative.

    Attributes:
        members: Ring positions in ring order (contiguous within the level's
            population).
        representative: The middle member (``members[len(members) // 2]``).
    """

    members: tuple[int, ...]
    representative: int

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a group needs at least one member")
        if self.representative not in self.members:
            raise ValueError(
                f"representative {self.representative} not in members {self.members}"
            )

    @property
    def size(self) -> int:
        """Number of members (including the representative)."""
        return len(self.members)

    @property
    def non_representatives(self) -> tuple[int, ...]:
        """Members excluding the representative, in ring order."""
        return tuple(n for n in self.members if n != self.representative)

    def sides(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Split members into (before, after) the representative.

        ``before`` collects toward the representative clockwise (ascending
        ring order), ``after`` counter-clockwise. Within each side the tuple
        is ordered nearest-to-farthest from the representative, which is the
        order wavelength ranks are assigned in.
        """
        idx = self.members.index(self.representative)
        before = tuple(reversed(self.members[:idx]))
        after = tuple(self.members[idx + 1 :])
        return before, after


@dataclass(frozen=True)
class GroupingLevel:
    """All groups of one hierarchy level.

    Attributes:
        level: 1-based level number (level 1 groups raw ring nodes).
        groups: Groups in ring order.
    """

    level: int
    groups: tuple[Group, ...] = field(default_factory=tuple)

    @property
    def population(self) -> tuple[int, ...]:
        """Every node participating at this level, in ring order."""
        return tuple(n for g in self.groups for n in g.members)

    @property
    def representatives(self) -> tuple[int, ...]:
        """Representatives of this level, in ring order."""
        return tuple(g.representative for g in self.groups)

    @property
    def max_group_size(self) -> int:
        """Largest group at this level."""
        return max(g.size for g in self.groups)


def middle_index(size: int) -> int:
    """Index of the middle element of a run of ``size`` nodes.

    For odd sizes this is the exact middle; for even sizes the element just
    past the midpoint (so both sides have at most ``size // 2`` members,
    matching the ``⌊m/2⌋`` wavelength requirement).
    """
    check_positive_int("size", size)
    return size // 2


def partition_ring(population: list[int] | tuple[int, ...], m: int) -> tuple[Group, ...]:
    """Partition an ordered population into contiguous groups of up to ``m``.

    The first ``len(population) // m`` groups have exactly ``m`` members; a
    final partial group holds the remainder (as in the paper's 15-node
    example, where N=15, m=5 gives three full groups).

    Args:
        population: Node ids in ring order (the current level's nodes).
        m: Target group size, >= 1.

    Returns:
        Groups in ring order; their members exactly cover ``population``.
    """
    check_positive_int("m", m)
    if not population:
        raise ValueError("population must be non-empty")
    if len(set(population)) != len(population):
        raise ValueError("population contains duplicate node ids")
    groups = []
    for start in range(0, len(population), m):
        members = tuple(population[start : start + m])
        rep = members[middle_index(len(members))]
        groups.append(Group(members=members, representative=rep))
    return tuple(groups)


def hierarchical_grouping(n_nodes: int, m: int) -> tuple[GroupingLevel, ...]:
    """Build the full WRHT grouping hierarchy for ``n_nodes`` and group size ``m``.

    Level 1 groups ring positions ``0..n_nodes-1``; each subsequent level
    groups the previous level's representatives. The hierarchy ends when a
    level has a single group (whether its representative set then does a
    plain collect or an all-to-all is the planner's decision — the grouping
    is the same either way).

    Args:
        n_nodes: Ring size N >= 1.
        m: Group size m >= 2 (m=1 would never terminate).

    Returns:
        One :class:`GroupingLevel` per reduce level; its length equals
        ``⌈log_m N⌉`` for N >= 2 (property-checked in the test suite).
    """
    check_positive_int("n_nodes", n_nodes)
    if m < 2:
        raise ValueError(f"group size m must be >= 2, got {m!r}")
    levels: list[GroupingLevel] = []
    population: tuple[int, ...] = tuple(range(n_nodes))
    if n_nodes == 1:
        return tuple(levels)
    level_no = 0
    while len(population) > 1:
        level_no += 1
        groups = partition_ring(population, m)
        levels.append(GroupingLevel(level=level_no, groups=groups))
        population = tuple(g.representative for g in groups)
        if len(groups) == 1:
            break
    return tuple(levels)


def grouping_summary(levels: tuple[GroupingLevel, ...]) -> str:
    """One-line-per-level description (used by the CLI's ``plan`` command)."""
    lines = []
    for lv in levels:
        sizes = [g.size for g in lv.groups]
        lines.append(
            f"level {lv.level}: {len(lv.groups)} group(s), sizes "
            f"{min(sizes)}..{max(sizes)}, reps={len(lv.representatives)}"
        )
    return "\n".join(lines)
