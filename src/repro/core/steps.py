"""Closed-form communication step counts (Table 1, Sec 4.2).

All-reduce cost in the paper's optical model is dominated by the number of
communication steps, because MRRs must be reconfigured (25 µs) before every
step. These are the exact formulas from Table 1:

================  =========================================================
Algorithm         Steps
================  =========================================================
Ring              ``2(N − 1)``
H-Ring            ``⌈2(m² + N)/m⌉ − 3`` when ``⌈m/w⌉ = 1``;
                  ``⌈2(2m² + N)/m⌉ − 6`` when ``⌈m/w⌉ > 1``
BT                ``2⌈log₂ N⌉``
WRHT              ``2⌈log_m N⌉`` or ``2⌈log_m N⌉ − 1`` (all-to-all shortcut)
================  =========================================================

Recursive Doubling (the electrical baseline of Sec 5.6) is included too:
``⌈log₂ N⌉`` for powers of two, plus two fix-up steps otherwise (the
standard MPICH construction).

Sanity anchor (checked in tests): N=1024, w=64 gives Ring 2046,
H-Ring 417 (m=5), BT 20, WRHT 3 (m=129) — Table 1's rightmost column.
"""

from __future__ import annotations

import math

from repro.core.wavelengths import alltoall_feasible, reduce_levels
from repro.util.validation import check_positive_int


def ring_steps(n_nodes: int) -> int:
    """Ring All-reduce: ``2(N−1)`` (reduce-scatter + all-gather)."""
    check_positive_int("n_nodes", n_nodes)
    return 2 * (n_nodes - 1)


def bt_steps(n_nodes: int) -> int:
    """Binary-tree All-reduce: ``2⌈log₂ N⌉`` (reduce then broadcast)."""
    check_positive_int("n_nodes", n_nodes)
    if n_nodes == 1:
        return 0
    return 2 * math.ceil(math.log2(n_nodes))


def rd_steps(n_nodes: int, variant: str = "doubling") -> int:
    """Recursive-doubling All-reduce steps.

    ``"doubling"``: ``log₂ N`` full-vector exchanges for powers of two;
    otherwise the MPICH fix-up adds a pre-reduce and a post-broadcast step
    around the power-of-two core: ``⌊log₂ N⌋ + 2``.

    ``"halving_doubling"`` (Rabenseifner): the core takes ``2·log₂ P``
    steps (recursive-halving reduce-scatter + recursive-doubling
    all-gather) with the same two fix-up steps for non-powers of two.
    """
    check_positive_int("n_nodes", n_nodes)
    if variant not in ("doubling", "halving_doubling"):
        raise ValueError(f"unknown RD variant {variant!r}")
    if n_nodes == 1:
        return 0
    floor_log = n_nodes.bit_length() - 1
    core = floor_log if variant == "doubling" else 2 * floor_log
    if n_nodes == 1 << floor_log:
        return core
    return core + 2


def swing_steps(n_nodes: int) -> int:
    """Swing All-reduce steps: ``2⌊log₂N⌋`` (+2 fold steps off powers of two).

    The recursive-halving reduce-scatter and its mirrored all-gather each
    take ``⌊log₂N⌋`` steps over the ``P = 2^⌊log₂N⌋`` core ranks; other N
    pay the MPICH pre-fold and post-broadcast — the same fix-up shape as
    :func:`rd_steps`, but with a halving (not full-vector) core.
    """
    check_positive_int("n_nodes", n_nodes)
    if n_nodes == 1:
        return 0
    floor_log = n_nodes.bit_length() - 1
    core = 2 * floor_log
    if n_nodes == 1 << floor_log:
        return core
    return core + 2


def scring_arc_count(n_nodes: int, pipeline: int = 1) -> int:
    """Arcs per chunk in the short-circuiting ring: ``min(2·pipeline, N−1)``."""
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("pipeline", pipeline)
    if n_nodes == 1:
        return 0
    return min(2 * pipeline, n_nodes - 1)


def scring_steps(n_nodes: int, pipeline: int = 1) -> int:
    """Short-circuiting-ring steps: ``2⌈(N−1)/min(2·pipeline, N−1)⌉``.

    ``pipeline=1`` (two arcs, one per ring direction) gives
    ``2⌈(N−1)/2⌉ ≈ N−1`` — half of Ring's latency; the knob shrinks the
    arcs down to the 2-step early-termination limit at ``2·pipeline >= N−1``.
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("pipeline", pipeline)
    if n_nodes == 1:
        return 0
    return 2 * math.ceil((n_nodes - 1) / scring_arc_count(n_nodes, pipeline))


def hring_steps(n_nodes: int, m: int, w: int) -> int:
    """Hierarchical-Ring All-reduce steps (Ueno & Yokota [28], as in Table 1).

    Args:
        n_nodes: Total node count N.
        m: Intra-group node count.
        w: Available wavelengths (controls intra-group serialization).
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("m", m)
    check_positive_int("w", w)
    if m > n_nodes:
        raise ValueError(f"group size m={m} exceeds n_nodes={n_nodes}")
    if math.ceil(m / w) == 1:
        return math.ceil(2 * (m * m + n_nodes) / m) - 3
    return math.ceil(2 * (2 * m * m + n_nodes) / m) - 6


def wrht_steps(n_nodes: int, m: int, w: int | None = None) -> int:
    """WRHT steps: ``2⌈log_m N⌉``, minus one when the all-to-all shortcut fits.

    Args:
        n_nodes: Ring size N.
        m: Group size (the planner caps it at ``2w+1`` and the physical
            -layer maximum; this function takes it as given).
        w: Available wavelengths. ``None`` means "unconstrained", in which
            case the all-to-all shortcut is always taken when more than one
            representative survives to the final step.
    """
    check_positive_int("n_nodes", n_nodes)
    if m < 2:
        raise ValueError(f"group size m must be >= 2, got {m!r}")
    levels = reduce_levels(n_nodes, m)
    if levels == 0:
        return 0
    if w is None:
        from repro.core.wavelengths import representatives_at_last_level

        shortcut = representatives_at_last_level(n_nodes, m) > 1
    else:
        shortcut = alltoall_feasible(n_nodes, m, w)
    return 2 * levels - 1 if shortcut else 2 * levels


def steps_table(n_nodes: int, w: int, hring_m: int = 5, wrht_m: int | None = None) -> dict[str, int]:
    """Step counts for every algorithm at one configuration (Table 1 row set).

    Args:
        n_nodes: N.
        w: Wavelengths.
        hring_m: H-Ring intra-group size (paper uses 5).
        wrht_m: WRHT group size; defaults to Lemma 1's ``2w+1``.
    """
    from repro.core.wavelengths import optimal_group_size

    m = wrht_m if wrht_m is not None else optimal_group_size(w)
    m = min(m, n_nodes)
    return {
        "Ring": ring_steps(n_nodes),
        "H-Ring": hring_steps(n_nodes, hring_m, w),
        "BT": bt_steps(n_nodes),
        "RD": rd_steps(n_nodes),
        "WRHT": wrht_steps(n_nodes, m, w),
    }
