"""WRHT planning: choose a group size and lay out the full hierarchy.

The planner reconciles three inputs — ring size ``N``, available wavelengths
``w``, and the physical-layer budget — into a concrete
:class:`WrhtPlan`: the grouping hierarchy, whether the final reduce step is
an all-to-all, the step count θ, and the peak wavelength demand. Schedule
builders (:mod:`repro.collectives.wrht_schedule`) and the analytical model
(:mod:`repro.core.timing`) both consume plans, which keeps the two views of
the algorithm consistent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import OpticalPhyParams, max_group_size
from repro.core.grouping import GroupingLevel, hierarchical_grouping
from repro.core.steps import wrht_steps
from repro.core.wavelengths import (
    alltoall_feasible,
    alltoall_wavelengths,
    group_wavelengths,
    optimal_group_size,
    representatives_at_last_level,
)
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class WrhtPlan:
    """A fully resolved WRHT configuration.

    Attributes:
        n_nodes: Ring size N.
        n_wavelengths: Wavelengths available per direction (``w``).
        m: Chosen group size.
        levels: The grouping hierarchy (``⌈log_m N⌉`` levels).
        alltoall: Whether the last reduce step is an all-to-all exchange.
        m_star: Representatives entering the final reduce step.
        theta: Total communication steps (``2·L`` or ``2·L − 1``).
        peak_wavelengths: Largest per-step wavelength demand of the plan.
        limited_by: Which constraint bounded ``m``:
            ``"wavelengths"``, ``"phy"``, ``"n_nodes"`` or ``"user"``.
    """

    n_nodes: int
    n_wavelengths: int
    m: int
    levels: tuple[GroupingLevel, ...]
    alltoall: bool
    m_star: int
    theta: int
    peak_wavelengths: int
    limited_by: str

    @property
    def n_levels(self) -> int:
        """Reduce levels ``⌈log_m N⌉``."""
        return len(self.levels)

    @property
    def reduce_steps(self) -> int:
        """Steps in the reduce stage (always ``n_levels``)."""
        return self.n_levels

    @property
    def broadcast_steps(self) -> int:
        """Steps in the broadcast stage (``n_levels`` or ``n_levels − 1``)."""
        return self.theta - self.n_levels

    def describe(self) -> str:
        """Multi-line human-readable summary (CLI ``plan`` command)."""
        lines = [
            f"WRHT plan: N={self.n_nodes}, w={self.n_wavelengths}, "
            f"m={self.m} (limited by {self.limited_by})",
            f"  reduce levels: {self.n_levels}, final reps m*={self.m_star}, "
            f"all-to-all={'yes' if self.alltoall else 'no'}",
            f"  steps: θ={self.theta} "
            f"({self.reduce_steps} reduce + {self.broadcast_steps} broadcast)",
            f"  peak wavelength demand: {self.peak_wavelengths}/{self.n_wavelengths}",
        ]
        for lv in self.levels:
            sizes = sorted({g.size for g in lv.groups})
            lines.append(
                f"  level {lv.level}: {len(lv.groups)} group(s), sizes {sizes}"
            )
        return "\n".join(lines)


def plan_wrht(
    n_nodes: int,
    n_wavelengths: int,
    m: int | None = None,
    phy: OpticalPhyParams | None = None,
) -> WrhtPlan:
    """Resolve a WRHT plan for a concrete system.

    Group-size choice, when ``m`` is not forced: start from Lemma 1's
    optimum ``2w+1``, cap by the ring size, and cap by the physical-layer
    maximum ``m'`` when ``phy`` is given. Forced ``m`` is validated against
    the wavelength budget (``⌊m/2⌋ ≤ w``).

    Args:
        n_nodes: Ring size N >= 2.
        n_wavelengths: Available wavelengths per direction, >= 1.
        m: Optional user-forced group size (odd recommended).
        phy: Optional physical-layer parameters enabling the Sec 4.4 caps.

    Returns:
        A frozen :class:`WrhtPlan`.
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("n_wavelengths", n_wavelengths)
    if n_nodes < 2:
        raise ValueError("WRHT needs at least 2 nodes")

    limited_by = "wavelengths"
    if m is None:
        chosen = optimal_group_size(n_wavelengths)
        if chosen >= n_nodes:
            chosen = n_nodes
            limited_by = "n_nodes"
        if phy is not None:
            phy_cap = max_group_size(n_nodes, phy, w=n_wavelengths)
            if phy_cap < chosen:
                chosen = phy_cap
                limited_by = "phy"
    else:
        if m < 2:
            raise ValueError(f"group size m must be >= 2, got {m!r}")
        if group_wavelengths(min(m, n_nodes)) > n_wavelengths:
            raise ValueError(
                f"group size m={m} needs {group_wavelengths(m)} wavelengths "
                f"but only {n_wavelengths} are available"
            )
        chosen = min(m, n_nodes)
        limited_by = "user"

    levels = hierarchical_grouping(n_nodes, chosen)
    m_star = representatives_at_last_level(n_nodes, chosen)
    alltoall = alltoall_feasible(n_nodes, chosen, n_wavelengths)
    theta = wrht_steps(n_nodes, chosen, n_wavelengths)

    demand = max(group_wavelengths(lv.max_group_size) for lv in levels)
    if alltoall:
        demand = max(demand, alltoall_wavelengths(m_star))
    return WrhtPlan(
        n_nodes=n_nodes,
        n_wavelengths=n_wavelengths,
        m=chosen,
        levels=levels,
        alltoall=alltoall,
        m_star=m_star,
        theta=theta,
        peak_wavelengths=demand,
        limited_by=limited_by,
    )
