"""WRHT core: the paper's primary contribution.

This package contains the algorithmic heart of the reproduction:

- :mod:`~repro.core.grouping` — hierarchical grouping of ring nodes with
  middle-node representatives (Sec 4.1.1).
- :mod:`~repro.core.wavelengths` — wavelength-requirement arithmetic
  (``⌊m/2⌋`` per group, ``⌈m*²/8⌉`` for the final all-to-all, optimal
  ``m = 2w+1`` of Lemma 1) (Sec 4.1.2).
- :mod:`~repro.core.steps` — closed-form communication-step counts for
  WRHT, Ring, H-Ring, BT and Recursive Doubling (Table 1, Sec 4.2).
- :mod:`~repro.core.timing` — analytical communication-time models
  (Eq 6 and per-baseline equivalents) (Sec 4.3).
- :mod:`~repro.core.constraints` — insertion-loss and crosstalk budgets
  (Eqs 7–13) and the maximum feasible group size ``m'`` (Sec 4.4).
- :mod:`~repro.core.planner` — ties the above together into a
  :class:`~repro.core.planner.WrhtPlan` for a concrete system.
- :mod:`~repro.core.torus` — the Sec 6.1 extension to torus/mesh.
"""

from repro.core.grouping import Group, GroupingLevel, hierarchical_grouping, partition_ring
from repro.core.pipeline import (
    PipelinedPlan,
    build_pipelined_wrht_schedule,
    optimal_bucket_count,
    pipelined_wrht_time,
)
from repro.core.lowerbounds import (
    min_allreduce_steps,
    min_allreduce_time,
    min_bandwidth_time,
    optimality_report,
)
from repro.core.planner import WrhtPlan, plan_wrht
from repro.core.torus import build_torus_wrht_schedule, torus_wrht_steps
from repro.core.steps import (
    bt_steps,
    hring_steps,
    rd_steps,
    ring_steps,
    wrht_steps,
)
from repro.core.timing import (
    CostModel,
    bt_time,
    hring_time,
    rd_time,
    ring_time,
    wrht_time,
)
from repro.core.wavelengths import (
    alltoall_wavelengths,
    group_wavelengths,
    optimal_group_size,
    wrht_wavelength_requirement,
)
from repro.core.constraints import (
    OpticalPhyParams,
    ber_from_snr,
    insertion_loss_db,
    max_communication_length,
    max_group_size,
    required_snr_for_ber,
    snr_db,
    worst_case_crosstalk_power,
)

__all__ = [
    "CostModel",
    "Group",
    "GroupingLevel",
    "OpticalPhyParams",
    "PipelinedPlan",
    "WrhtPlan",
    "alltoall_wavelengths",
    "ber_from_snr",
    "bt_steps",
    "bt_time",
    "build_pipelined_wrht_schedule",
    "build_torus_wrht_schedule",
    "group_wavelengths",
    "hierarchical_grouping",
    "hring_steps",
    "hring_time",
    "insertion_loss_db",
    "max_communication_length",
    "max_group_size",
    "min_allreduce_steps",
    "min_allreduce_time",
    "min_bandwidth_time",
    "optimal_bucket_count",
    "optimal_group_size",
    "optimality_report",
    "partition_ring",
    "pipelined_wrht_time",
    "plan_wrht",
    "rd_steps",
    "rd_time",
    "required_snr_for_ber",
    "ring_steps",
    "ring_time",
    "snr_db",
    "torus_wrht_steps",
    "worst_case_crosstalk_power",
    "wrht_steps",
    "wrht_time",
    "wrht_wavelength_requirement",
]
