"""Optical communication constraints (Sec 4.4, Eqs 7–13).

Two physical effects cap the WRHT group size ``m``:

- **Insertion loss** (Eqs 7–10): every optical interface a signal passes
  attenuates it by ``P_pass`` dB; the longest WRHT path spans ``L_max``
  interfaces (Eq 7), so the laser budget must cover
  ``P_m + L_max·P_pass + P_p`` (Eqs 8–9).
- **Crosstalk** (Eqs 11–13): each passed interface also leaks ``P_Rx`` of
  neighbouring channels into the detector; the resulting SNR must keep the
  bit-error rate at or below 1e-9.

Powers follow the paper's conventions: the link budget (Eqs 8–10) is in dB /
dBm, while crosstalk noise (Eqs 11–12) combines linear powers (mW here).
Default parameter values are representative silicon-photonics numbers chosen
so that the constraint binds near the paper's largest evaluated group size
(m = 129 is feasible on a 1024-node ring, the next odd candidate sizes that
would save a hierarchy level are not) — see DESIGN.md §5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.wavelengths import reduce_levels
from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class OpticalPhyParams:
    """Physical-layer parameters for the loss/crosstalk budget.

    Attributes:
        laser_power_dbm: Comb-laser power per wavelength ``P_laser`` (dBm).
        modulator_loss_db: Tx modulator loss ``P_m`` (dB).
        per_interface_loss_db: Loss per passed optical interface
            ``P_pass`` (dB).
        extinction_ratio_penalty_db: Power penalty ``P_p`` (dB).
        signal_power_mw: Received signal power ``P_S`` (mW).
        rx_crosstalk_mw: Worst-case per-interface Rx crosstalk ``P_Rx`` (mW).
        tx_crosstalk_mw: Worst-case Tx-side crosstalk ``P_Tx`` (mW).
        other_noise_mw: Other noise power ``P_O`` (mW).
        max_ber: Reliability target; the paper requires 1e-9.
    """

    laser_power_dbm: float = 13.0
    modulator_loss_db: float = 1.5
    per_interface_loss_db: float = 0.05
    extinction_ratio_penalty_db: float = 4.5
    signal_power_mw: float = 1.0
    rx_crosstalk_mw: float = 5.0e-11
    tx_crosstalk_mw: float = 2.0e-10
    other_noise_mw: float = 1.0e-9
    max_ber: float = 1.0e-9

    def __post_init__(self) -> None:
        check_positive("per_interface_loss_db", self.per_interface_loss_db)
        check_positive("signal_power_mw", self.signal_power_mw)
        check_positive("max_ber", self.max_ber)
        for name in ("rx_crosstalk_mw", "tx_crosstalk_mw", "other_noise_mw"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


def max_communication_length(m: int, n_nodes: int) -> int:
    """``L_max`` — longest WRHT path in interfaces, Eq 7.

    ``⌊m/2⌋`` when one level suffices (members reach the representative
    within half a group); ``m^(levels−1)`` otherwise (top-level groups span
    ``m`` representatives that are themselves ``m^(levels−2)`` nodes apart).
    """
    check_positive_int("n_nodes", n_nodes)
    if m < 2:
        raise ValueError(f"group size m must be >= 2, got {m!r}")
    levels = reduce_levels(n_nodes, m)
    if levels <= 1:
        return m // 2
    return m ** (levels - 1)


def insertion_loss_db(l_max: int, params: OpticalPhyParams) -> float:
    """Total optical loss ``L_l = P_m + L_max · P_pass`` (Eq 8)."""
    if l_max < 0:
        raise ValueError(f"l_max must be >= 0, got {l_max!r}")
    return params.modulator_loss_db + l_max * params.per_interface_loss_db


def loss_feasible(m: int, n_nodes: int, params: OpticalPhyParams) -> bool:
    """Eq 9: ``P_laser ≥ L_l + P_p`` for the group size's worst path."""
    l_max = max_communication_length(m, n_nodes)
    return params.laser_power_dbm >= insertion_loss_db(l_max, params) + (
        params.extinction_ratio_penalty_db
    )


def worst_case_crosstalk_power(l_max: int, params: OpticalPhyParams) -> float:
    """``P_Nw = L_max · P_Rx + P_Tx`` in mW (Eq 12)."""
    if l_max < 0:
        raise ValueError(f"l_max must be >= 0, got {l_max!r}")
    return l_max * params.rx_crosstalk_mw + params.tx_crosstalk_mw


def snr_db(signal_mw: float, crosstalk_mw: float, other_noise_mw: float) -> float:
    """``SNR = 10·log₁₀(P_S / (P_N + P_O))`` in dB (Eq 11)."""
    check_positive("signal_mw", signal_mw)
    denom = crosstalk_mw + other_noise_mw
    if denom <= 0:
        return math.inf
    return 10.0 * math.log10(signal_mw / denom)


def ber_from_snr(snr: float) -> float:
    """``BER = ½·e^(−SNR_W/4)`` (Eq 13)."""
    return 0.5 * math.exp(-snr / 4.0)


def required_snr_for_ber(ber: float) -> float:
    """Inverse of Eq 13: minimum SNR for a target BER."""
    check_positive("ber", ber)
    if ber >= 0.5:
        return 0.0
    return -4.0 * math.log(2.0 * ber)


def crosstalk_feasible(m: int, n_nodes: int, params: OpticalPhyParams) -> bool:
    """Whether the worst-case path's BER stays within ``params.max_ber``."""
    l_max = max_communication_length(m, n_nodes)
    noise = worst_case_crosstalk_power(l_max, params)
    snr = snr_db(params.signal_power_mw, noise, params.other_noise_mw)
    return ber_from_snr(snr) <= params.max_ber


def group_size_feasible(m: int, n_nodes: int, params: OpticalPhyParams) -> bool:
    """Both constraints (Eqs 9 and 13) for group size ``m``."""
    return loss_feasible(m, n_nodes, params) and crosstalk_feasible(m, n_nodes, params)


def max_group_size(
    n_nodes: int,
    params: OpticalPhyParams | None = None,
    w: int | None = None,
) -> int:
    """Largest odd group size ``m'`` satisfying Eqs 9 and 13 (and ``≤ 2w+1``).

    Feasibility is not monotone in ``m`` (``L_max`` drops whenever a larger
    ``m`` removes a hierarchy level), so every odd candidate is checked.

    Args:
        n_nodes: Ring size N.
        params: Physical-layer parameters (defaults used when ``None``).
        w: Wavelengths available; caps the search at Lemma 1's ``2w+1``.

    Returns:
        The maximum feasible odd ``m'`` (at least 3 candidates are always
        scanned; raises if not even m=3 is feasible).
    """
    check_positive_int("n_nodes", n_nodes)
    params = params or OpticalPhyParams()
    upper = n_nodes
    if w is not None:
        check_positive_int("w", w)
        upper = min(upper, 2 * w + 1)
    best = 0
    for m in range(3, max(upper, 3) + 1, 2):
        if group_size_feasible(m, n_nodes, params):
            best = m
    if best == 0:
        raise ValueError(
            "no feasible group size: the optical budget cannot support even "
            f"m=3 on {n_nodes} nodes with {params!r}"
        )
    return best
