"""Algorithm-independent lower bounds for All-reduce on the WDM ring.

Lemma 1 bounds *WRHT's* steps; these are bounds on **any** All-reduce:

- **Step (latency) bound.** In one step a node can receive on at most
  ``2w`` wavelength channels (``w`` per direction), so the set of nodes
  whose data has influenced a given node grows by at most ``×(2w+1)`` per
  step; every node needs influence from all N inputs, hence
  ``θ ≥ ⌈log_{2w+1} N⌉`` for *any* All-reduce — including gossip-style
  algorithms like recursive doubling, whose symmetric exchanges spread
  influence in all directions at once (which is why the naive
  "reduce-then-broadcast ⇒ 2×" strengthening is false in general).
  WRHT's ``2⌈log_{2w+1}N⌉ − 1`` is therefore within 2× of the universal
  bound; the paper's Lemma 1 is the optimum *within the hierarchical-tree
  family*, where reduction must complete before dissemination starts.
- **Bandwidth bound.** Every node must ingest at least ``d·(N−1)/N`` bytes
  of foreign information (its final vector depends on all other inputs,
  reduced or not) through an ingress of at most ``2w`` wavelengths:
  ``T ≥ d·(N−1)/(N·2w·B)``.
- **Combined.** ``T ≥ max(latency, bandwidth)`` with the per-step overhead
  ``a`` applied to the step bound.

`optimality_report` tabulates how close each algorithm gets — Ring is
near-optimal on pure bandwidth at one wavelength but pays Θ(N) steps;
WRHT is step-optimal but leaves ingress parallelism unused on the payload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.timing import CostModel, algorithm_time
from repro.util.validation import check_positive, check_positive_int


def min_allreduce_steps(n_nodes: int, n_wavelengths: int) -> int:
    """``⌈log_{2w+1} N⌉``: steps any All-reduce needs on the ring.

    Computed by iterated multiplication (no floating-point logs) so exact
    at powers of ``2w+1``.
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("n_wavelengths", n_wavelengths)
    if n_nodes == 1:
        return 0
    factor = 2 * n_wavelengths + 1
    steps = 0
    influence = 1
    while influence < n_nodes:
        influence *= factor
        steps += 1
    return steps


def min_bandwidth_time(
    n_nodes: int, d_bytes: float, n_wavelengths: int, model: CostModel
) -> float:
    """``d·(N−1)/(N·2w·B)``: ingress-limited time floor."""
    check_positive_int("n_nodes", n_nodes)
    check_positive("d_bytes", d_bytes)
    if n_nodes == 1:
        return 0.0
    ingress = 2 * n_wavelengths * model.line_rate
    return d_bytes * (n_nodes - 1) / (n_nodes * ingress)


def min_allreduce_time(
    n_nodes: int, d_bytes: float, n_wavelengths: int, model: CostModel
) -> float:
    """Combined floor: step bound × overhead, against the bandwidth floor."""
    steps = min_allreduce_steps(n_nodes, n_wavelengths)
    return max(
        steps * model.step_overhead,
        min_bandwidth_time(n_nodes, d_bytes, n_wavelengths, model),
    )


@dataclass(frozen=True)
class OptimalityEntry:
    """One algorithm's distance from the lower bounds.

    Attributes:
        algorithm: Name.
        time: Modeled communication seconds.
        step_ratio: Algorithm steps / step lower bound.
        time_ratio: Algorithm time / combined time lower bound.
    """

    algorithm: str
    time: float
    step_ratio: float
    time_ratio: float


def optimality_report(
    n_nodes: int,
    d_bytes: float,
    n_wavelengths: int,
    model: CostModel,
    algorithms: tuple[str, ...] = ("Ring", "H-Ring", "BT", "RD", "WRHT"),
) -> list[OptimalityEntry]:
    """Each algorithm's step/time ratios against the ring lower bounds."""
    from repro.core.steps import steps_table

    hring_m = min(5, n_nodes)
    steps = steps_table(n_nodes, n_wavelengths, hring_m=hring_m)
    step_floor = min_allreduce_steps(n_nodes, n_wavelengths)
    time_floor = min_allreduce_time(n_nodes, d_bytes, n_wavelengths, model)
    report = []
    for name in algorithms:
        time = algorithm_time(
            name, n_nodes, d_bytes, model, w=n_wavelengths, hring_m=hring_m
        )
        report.append(
            OptimalityEntry(
                algorithm=name,
                time=time,
                step_ratio=steps[name] / step_floor if step_floor else 1.0,
                time_ratio=time / time_floor if time_floor else 1.0,
            )
        )
    return report
