"""WRHT extended to torus/mesh topologies (Sec 6.1).

The paper sketches the extension: on an ``R × C`` torus, run WRHT's reduce
stage along every row concurrently (each row is a ``C``-node ring), then
synchronize the ``R`` row representatives along their column (another WRHT
pass, or a one-step all-to-all when wavelengths allow), then broadcast in
reverse. A mesh differs only in the physical layer — rows/columns are lines
instead of rings, so the final stage uses the one-stage *line* model of
[13] (``⌈k²/4⌉`` wavelengths instead of ``⌈k²/8⌉``, as a line has no second
direction to split load across... more precisely no wrap path); schedules
are identical.

This module provides the step/wavelength arithmetic and an executable
schedule builder whose output passes the same numerical All-reduce
verification as the ring schedules.
"""

from __future__ import annotations

import math

from repro.collectives.alltoall import build_alltoall_step
from repro.collectives.base import CommStep, Schedule, Transfer, compress_steps
from repro.core.grouping import GroupingLevel, partition_ring
from repro.core.wavelengths import reduce_levels
from repro.util.validation import check_positive_int

TOPOLOGIES = ("torus", "mesh")


def torus_alltoall_wavelengths(k: int, topology: str = "torus") -> int:
    """Wavelengths for a one-step all-to-all among ``k`` nodes of a row/column.

    ``⌈k²/8⌉`` on a torus ring (two wrap directions), ``⌈k²/4⌉`` on a mesh
    line (Liang & Shen's line model [13]).
    """
    check_positive_int("k", k)
    if topology not in TOPOLOGIES:
        raise ValueError(f"topology must be one of {TOPOLOGIES}, got {topology!r}")
    if k == 1:
        return 0
    denom = 8 if topology == "torus" else 4
    return math.ceil(k * k / denom)


def torus_wrht_steps(rows: int, cols: int, m: int, w: int, topology: str = "torus") -> int:
    """Total WRHT steps on an ``rows × cols`` torus/mesh with group size ``m``.

    Row phase: ``⌈log_m C⌉`` reduce + same broadcast; column phase between
    them: ``2⌈log_m R⌉`` (or one less with the all-to-all shortcut).
    """
    check_positive_int("rows", rows)
    check_positive_int("cols", cols)
    row_levels = reduce_levels(cols, m) if cols > 1 else 0
    col_levels = reduce_levels(rows, m) if rows > 1 else 0
    col_steps = 2 * col_levels
    if col_levels:
        m_star = rows
        for _ in range(col_levels - 1):
            m_star = math.ceil(m_star / m)
        if m_star > 1 and torus_alltoall_wavelengths(m_star, topology) <= w:
            col_steps -= 1
    if col_steps == 0 and rows > 1:
        raise AssertionError("unreachable: rows > 1 implies a column phase")
    return 2 * row_levels + col_steps


def _levels_for(population: tuple[int, ...], m: int) -> list[GroupingLevel]:
    """Hierarchical grouping of an arbitrary ordered population."""
    levels: list[GroupingLevel] = []
    current = population
    level_no = 0
    while len(current) > 1:
        level_no += 1
        groups = partition_ring(current, m)
        levels.append(GroupingLevel(level=level_no, groups=groups))
        current = tuple(g.representative for g in groups)
        if len(groups) == 1:
            break
    return levels


def build_torus_wrht_schedule(
    rows: int,
    cols: int,
    total_elems: int,
    m: int = 5,
    n_wavelengths: int = 64,
    topology: str = "torus",
) -> Schedule:
    """Executable WRHT All-reduce on an ``rows × cols`` torus/mesh.

    Node ids are row-major (``node = r·cols + c``). Row reduce levels are
    synchronized across rows (one :class:`CommStep` per level containing all
    rows' collects); likewise for the broadcasts.

    Args:
        rows: Torus height R >= 1.
        cols: Torus width C >= 1.
        total_elems: Gradient vector length.
        m: Group size for both row and column phases.
        n_wavelengths: Budget for the column all-to-all shortcut.
        topology: ``"torus"`` or ``"mesh"`` (affects only the shortcut test).
    """
    check_positive_int("rows", rows)
    check_positive_int("cols", cols)
    check_positive_int("total_elems", total_elems)
    if m < 2:
        raise ValueError(f"group size m must be >= 2, got {m!r}")
    if topology not in TOPOLOGIES:
        raise ValueError(f"topology must be one of {TOPOLOGIES}, got {topology!r}")
    if rows * cols == 1:
        from repro.collectives.base import singleton_schedule

        return singleton_schedule("wrht-torus", total_elems)

    # Row phase grouping (identical structure for every row; we instantiate
    # per row because node ids differ).
    row_level_sets: list[list[GroupingLevel]] = []
    for r in range(rows):
        row_nodes = tuple(r * cols + c for c in range(cols))
        row_level_sets.append(_levels_for(row_nodes, m) if cols > 1 else [])
    n_row_levels = len(row_level_sets[0])

    steps: list[CommStep] = []

    def _row_step(level_idx: int, op: str) -> CommStep:
        transfers = []
        for levels in row_level_sets:
            level = levels[level_idx]
            for group in level.groups:
                for member in group.non_representatives:
                    if op == "sum":
                        transfers.append(
                            Transfer(member, group.representative, 0, total_elems, "sum")
                        )
                    else:
                        transfers.append(
                            Transfer(group.representative, member, 0, total_elems, "copy")
                        )
        return CommStep(tuple(transfers), stage="reduce" if op == "sum" else "broadcast",
                        level=level_idx + 1)

    for li in range(n_row_levels):  # row reduce
        steps.append(_row_step(li, "sum"))

    # Column phase among the row representatives.
    col_alltoall = False
    col_levels: list[GroupingLevel] = []
    if rows > 1:
        reps = tuple(
            (row_level_sets[r][-1].groups[0].representative if cols > 1 else r * cols)
            for r in range(rows)
        )
        col_levels = _levels_for(reps, m)
        m_star = len(col_levels[-1].population)
        col_alltoall = (
            m_star > 1 and torus_alltoall_wavelengths(m_star, topology) <= n_wavelengths
        )
        for level in col_levels[:-1]:
            transfers = [
                Transfer(member, g.representative, 0, total_elems, "sum")
                for g in level.groups
                for member in g.non_representatives
            ]
            steps.append(CommStep(tuple(transfers), stage="reduce", level=level.level))
        last = col_levels[-1]
        if col_alltoall:
            steps.append(
                build_alltoall_step(last.population, total_elems, stage="reduce")
            )
            bcast_col = col_levels[:-1]
        else:
            transfers = [
                Transfer(member, g.representative, 0, total_elems, "sum")
                for g in last.groups
                for member in g.non_representatives
            ]
            steps.append(CommStep(tuple(transfers), stage="reduce", level=last.level))
            bcast_col = col_levels
        for level in reversed(bcast_col):
            transfers = [
                Transfer(g.representative, member, 0, total_elems, "copy")
                for g in level.groups
                for member in g.non_representatives
            ]
            steps.append(CommStep(tuple(transfers), stage="broadcast", level=level.level))

    for li in range(n_row_levels - 1, -1, -1):  # row broadcast
        steps.append(_row_step(li, "copy"))

    expected = torus_wrht_steps(rows, cols, m, n_wavelengths, topology)
    if len(steps) != expected:
        raise AssertionError(
            f"torus schedule has {len(steps)} steps, formula says {expected}"
        )
    return Schedule(
        algorithm="wrht-torus",
        n_nodes=rows * cols,
        total_elems=total_elems,
        steps=steps,
        timing_profile=compress_steps(steps),
        meta={
            "profile_exact": True,
            "rows": rows,
            "cols": cols,
            "m": m,
            "topology": topology,
            "col_alltoall": col_alltoall,
        },
    )
