"""Optical system configuration (Table 2, optical rows).

Two line-rate interpretations are exposed (see DESIGN.md §6 for the full
derivation):

- ``"strict"``     — 40 Gbit/s per wavelength, Table 2 taken literally.
- ``"calibrated"`` — 40 GByte/s per wavelength; reproduces the paper's
  reported figure shapes and average-reduction percentages (the most
  plausible reading of the original simulator's unit handling).

Everything else is shared: 64 wavelengths, 25 µs MRR reconfiguration per
step, 497 fs O/E/O conversion per 72-byte packet, double ring (one fiber
pool per direction by default; TeraRack's second fiber pair is available
via ``fibers_per_direction=2``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constraints import OpticalPhyParams
from repro.core.timing import CostModel
from repro.faults.models import FaultSet
from repro.util.units import gbit_per_s, gbyte_per_s, usec
from repro.util.validation import check_positive, check_positive_int

INTERPRETATIONS = ("calibrated", "strict")


@dataclass(frozen=True)
class OpticalSystemConfig:
    """Parameters of the simulated optical ring interconnect.

    Attributes:
        n_nodes: Ring size N.
        n_wavelengths: Wavelengths per fiber (``w``; Table 2 uses 64).
        fibers_per_direction: Parallel fiber rings per direction (TeraRack
            has two; the paper's wavelength accounting assumes one pool, so
            1 is the default).
        line_rate_value: Numeric line rate per wavelength (40 in Table 2).
        interpretation: ``"calibrated"`` (GB/s) or ``"strict"`` (Gbit/s).
        mrr_reconfig_delay: Seconds of MRR reconfiguration before each step.
        t_tune: Per-MRR wavelength tuning time (seconds). The paper's model
            treats circuit setup as free; a positive ``t_tune`` prices the
            thermal retune an MRR pays when its claimed wavelength changes
            between rounds (see :mod:`repro.optical.reconfig`). 0 (the
            default) keeps every timing bit-identical to the tuning-free
            model.
        tune_per_channel: Optional extra tuning seconds per unit of
            spectral distance from the parked resonance (index 0) — the
            linear thermo-optic sweep term of
            :func:`repro.optical.phy.mrr_tuning_time`.
        oeo_delay_per_packet: O/E/O conversion delay per packet (seconds).
        packet_bytes: Packet size for the O/E/O term.
        phy: Optional physical-layer parameters enabling Sec 4.4 checks.
        failed_wavelengths: Wavelength indices that are unusable on every
            fiber (failed comb-laser lines / stuck MRRs). Fault-injection
            knob: the RWA routes around them, costing extra rounds; the
            planner should be given the reduced effective budget
            (:attr:`usable_wavelengths`) to replan instead.
        faults: Declarative fault set (:mod:`repro.faults`). Lowering masks
            the failed resources out of the RWA, reroutes around cut fiber,
            and derates the phy budget; because the config is frozen and
            hashable, attaching faults automatically salts every plan-cache
            key.
    """

    n_nodes: int
    n_wavelengths: int = 64
    fibers_per_direction: int = 1
    line_rate_value: float = 40.0
    interpretation: str = "calibrated"
    mrr_reconfig_delay: float = usec(25)
    t_tune: float = 0.0
    tune_per_channel: float = 0.0
    oeo_delay_per_packet: float = 497e-15
    packet_bytes: int = 72
    phy: OpticalPhyParams | None = field(default=None)
    failed_wavelengths: frozenset[int] = field(default_factory=frozenset)
    faults: FaultSet = field(default_factory=FaultSet)

    def __post_init__(self) -> None:
        check_positive_int("n_nodes", self.n_nodes)
        check_positive_int("n_wavelengths", self.n_wavelengths)
        check_positive_int("fibers_per_direction", self.fibers_per_direction)
        check_positive("line_rate_value", self.line_rate_value)
        check_positive_int("packet_bytes", self.packet_bytes)
        if self.interpretation not in INTERPRETATIONS:
            raise ValueError(
                f"interpretation must be one of {INTERPRETATIONS}, "
                f"got {self.interpretation!r}"
            )
        if self.mrr_reconfig_delay < 0 or self.oeo_delay_per_packet < 0:
            raise ValueError("delays must be >= 0")
        if self.t_tune < 0 or self.tune_per_channel < 0:
            raise ValueError("tuning times must be >= 0")
        object.__setattr__(
            self, "failed_wavelengths", frozenset(self.failed_wavelengths)
        )
        for lam in self.failed_wavelengths:
            if not (0 <= lam < self.n_wavelengths):
                raise ValueError(
                    f"failed wavelength {lam} out of range [0, {self.n_wavelengths})"
                )
        if len(self.failed_wavelengths) >= self.n_wavelengths:
            raise ValueError("at least one wavelength must remain usable")
        if self.faults is None:
            object.__setattr__(self, "faults", FaultSet())
        elif not isinstance(self.faults, FaultSet):
            object.__setattr__(self, "faults", FaultSet(tuple(self.faults)))
        self.faults.validate(self.n_nodes, self.n_wavelengths)
        if len(self.dead_wavelengths) >= self.n_wavelengths:
            raise ValueError("at least one wavelength must remain usable")

    @property
    def dead_wavelengths(self) -> frozenset[int]:
        """Every globally unusable wavelength: failures plus dead faults."""
        return self.failed_wavelengths | self.faults.dead_wavelengths

    @property
    def effective_phy(self) -> OpticalPhyParams | None:
        """:attr:`phy` derated by any laser-power droop in the fault set."""
        return self.faults.effective_phy(self.phy)

    @property
    def usable_wavelengths(self) -> int:
        """Wavelengths per fiber after failures — the planning budget."""
        return self.n_wavelengths - len(self.dead_wavelengths)

    @property
    def reconfig(self):
        """The :class:`~repro.optical.reconfig.ReconfigModel` this config
        implies (disabled — zero-cost — unless ``t_tune`` or
        ``tune_per_channel`` is positive)."""
        from repro.optical.reconfig import ReconfigModel

        return ReconfigModel(
            t_tune=self.t_tune, tune_per_channel=self.tune_per_channel
        )

    @property
    def line_rate(self) -> float:
        """Per-wavelength payload rate in bytes/second."""
        if self.interpretation == "strict":
            return gbit_per_s(self.line_rate_value)
        return gbyte_per_s(self.line_rate_value)

    def cost_model(self) -> CostModel:
        """The equivalent analytical :class:`~repro.core.timing.CostModel`."""
        return CostModel(
            line_rate=self.line_rate,
            step_overhead=self.mrr_reconfig_delay,
            oeo_delay_per_packet=self.oeo_delay_per_packet,
            packet_bytes=self.packet_bytes,
        )
