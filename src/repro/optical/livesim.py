"""Live event-driven execution of schedules on the optical ring.

The step-timing executor (:mod:`repro.optical.network`) prices each step
analytically (max over concurrent circuit durations, patterns priced once).
This module replays a schedule as *actual simulation processes* on the
discrete-event kernel:

- a coordinator process walks the steps; per round it waits out the MRR
  reconfiguration, spawns one process per circuit, and barriers on all of
  them (``AllOf``);
- each circuit process acquires capacity-1 :class:`~repro.sim.resources.
  Resource` tokens for every (direction, fiber, wavelength, segment) it
  crosses — in canonical order — holds them for the payload duration, and
  releases them.

Because the RWA already guarantees segment exclusivity, a circuit process
must **never block** on a resource; the simulation asserts this, making the
live run an independent, mechanism-level check of the RWA (a conflict that
slipped past the validators would show up here as a blocked acquire). The
test suite asserts that live total time equals the step-timing executor's
to float precision — the two derivations of Eq 6 agree.

This is intentionally the expensive path (one process per transfer): use it
for validation and for tracing at small/medium scale, and the step-timing
executor for paper-scale sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.base import Schedule
from repro.optical.circuit import Circuit
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.sim import Resource, Simulator
from repro.sim.rng import SeededRng
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass
class LiveRunResult:
    """Result of a live event-driven run.

    Attributes:
        algorithm: Schedule name.
        total_time: Simulation end time (seconds).
        n_steps: Steps executed.
        n_rounds: Reconfiguration rounds executed.
        n_circuits: Circuit processes spawned.
        n_events: Kernel events processed (a determinism fingerprint).
    """

    algorithm: str
    total_time: float
    n_steps: int
    n_rounds: int
    n_circuits: int
    n_events: int


class ChannelBlockedError(AssertionError):
    """A circuit process had to wait for a channel segment — meaning the
    wavelength assignment was not actually conflict-free."""


class LiveOpticalSimulation:
    """Event-driven replay of schedules on the optical ring."""

    def __init__(
        self,
        config: OpticalSystemConfig,
        strategy: str = "first_fit",
        rng: SeededRng | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Round planning is delegated to the executor so both paths share
        # routing, RWA, fallback and validation behaviour exactly.
        self._planner = OpticalRingNetwork(
            config, strategy=strategy, rng=rng, validate=True
        )

    def run(self, schedule: Schedule, bytes_per_elem: float = 4.0) -> LiveRunResult:
        """Replay ``schedule`` event by event.

        Requires materialized steps (the live path exists to exercise real
        step instances, not compressed patterns).
        """
        if schedule.n_nodes > self.config.n_nodes:
            raise ValueError(
                f"schedule spans {schedule.n_nodes} nodes but the ring has "
                f"{self.config.n_nodes}"
            )
        sim = Simulator()
        channels: dict[tuple, Resource] = {}
        stats = {"rounds": 0, "circuits": 0, "steps": 0}

        def channel(key: tuple) -> Resource:
            resource = channels.get(key)
            if resource is None:
                resource = Resource(sim, 1, name=f"chan{key}")
                channels[key] = resource
            return resource

        def circuit_process(circuit: Circuit):
            keys = [
                (circuit.route.direction.value, circuit.fiber,
                 circuit.wavelength, segment)
                for segment in sorted(circuit.route.segments)
            ]
            start = sim.now
            for key in keys:
                yield channel(key).acquire()
            if sim.now > start:
                raise ChannelBlockedError(
                    f"circuit {circuit.transfer.src}->{circuit.transfer.dst} "
                    "blocked acquiring its channel — RWA conflict"
                )
            yield sim.timeout(circuit.duration)
            for key in keys:
                channels[key].release()

        def coordinator():
            for step in schedule.iter_steps():
                stats["steps"] += 1
                rounds = self._planner.plan_step_rounds(step, bytes_per_elem)
                for circuits in rounds:
                    stats["rounds"] += 1
                    yield sim.timeout(self.config.mrr_reconfig_delay)
                    processes = [
                        sim.process(circuit_process(c), name="circuit")
                        for c in circuits
                    ]
                    stats["circuits"] += len(processes)
                    yield sim.all_of(processes)
                    self.tracer.emit(
                        sim.now, "optical.live.round",
                        stage=step.stage, n_circuits=len(processes),
                    )
            return sim.now

        total = sim.run_process(coordinator(), name="schedule")
        return LiveRunResult(
            algorithm=schedule.algorithm,
            total_time=total,
            n_steps=stats["steps"],
            n_rounds=stats["rounds"],
            n_circuits=stats["circuits"],
            n_events=sim.n_processed,
        )
