"""Live event-driven execution of schedules on the optical ring.

The step-timing executor (:mod:`repro.optical.network`) prices each step
analytically (max over concurrent circuit durations, patterns priced once).
This module replays a schedule as *actual simulation processes* on the
discrete-event kernel:

- a coordinator process walks the steps; per round it waits out the MRR
  reconfiguration, spawns one process per circuit, and barriers on all of
  them (``AllOf``);
- each circuit process acquires capacity-1 :class:`~repro.sim.resources.
  Resource` tokens for every (direction, fiber, wavelength, segment) it
  crosses — in canonical order — holds them for the payload duration, and
  releases them (in reverse-acquisition order, under ``finally``, so no
  error path can leak a channel token).

Because the RWA already guarantees segment exclusivity, a circuit process
must **never block** on a resource; the simulation asserts this, making the
live run an independent, mechanism-level check of the RWA (a conflict that
slipped past the validators would show up here as a blocked acquire). The
test suite asserts that live total time equals the step-timing executor's
to float precision — the two derivations of Eq 6 agree.

Mid-flight faults
-----------------

The live path additionally accepts :class:`~repro.faults.models.FaultEvent`
inputs: at each event's fixed simulation time a fault driver process
activates the fault, swaps the round planner for one whose config carries
the accumulated fault set (so every later RWA is the degraded one), and
interrupts the in-flight circuit processes the fault breaks. An interrupted
circuit reports back instead of failing; after the round barrier the
coordinator collects the unfinished transfers, waits out an exponential
backoff (``backoff_base × backoff_factor^(attempt−1)``), and retries them
as a fresh round against the replanned RWA. Everything is deterministic —
fault times, backoff, and replanning are pure functions of the inputs — so
two runs with the same seed produce identical retry counts and total time.

This is intentionally the expensive path (one process per transfer): use it
for validation and for tracing at small/medium scale, and the step-timing
executor for paper-scale sweeps.

Reconfiguration-aware control plane
-----------------------------------

When the config's MRR tuning model is enabled (``t_tune > 0``, see
:mod:`repro.optical.reconfig`) the live run prices tuning with real
simulation processes. In the fault-free overlapped mode the coordinator
plans every round up front and, while round *k* transmits, spawns a
control-plane tuning process for round *k+1*'s **free** claims (channels
round *k* never drives) — the data plane and the control plane race, and
only the leftover ``max(0, free − payload)`` plus the serial **blocked**
tuning is exposed, exactly the static ``apply_reconfig`` charge. With
mid-flight faults (round structure can change under retry/replan, so
lookahead would be wrong) or ``overlap=False`` the coordinator charges the
conservative serial exposure before each round instead. With the model
disabled (the default) the event stream is byte-identical to earlier
releases — same events, same ``n_events`` fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.backend.errors import BackendExecutionError
from repro.collectives.base import CommStep, Schedule
from repro.faults.models import FaultEvent, FaultSet
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, MetricsSnapshot
from repro.optical.circuit import Circuit
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.optical.reconfig import exposed_tuning, round_claims, split_tuning
from repro.sim import Resource, Simulator
from repro.sim.events import Interrupted
from repro.sim.rng import SeededRng
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass
class LiveRunResult:
    """Result of a live event-driven run.

    Attributes:
        algorithm: Schedule name.
        total_time: Simulation end time (seconds).
        n_steps: Steps executed.
        n_rounds: Reconfiguration rounds executed (including retry rounds).
        n_circuits: Circuit processes spawned.
        n_events: Kernel events processed (a determinism fingerprint).
        n_faults: Fault events that activated during the run.
        n_retries: Backoff-and-retry cycles the coordinator performed.
        n_interrupted: Circuit processes interrupted by faults.
        downtime: Seconds spent waiting in retry backoff.
        metrics: :class:`~repro.obs.metrics.MetricsSnapshot` of the run
            when the simulation had metrics enabled, else ``None``.
    """

    algorithm: str
    total_time: float
    n_steps: int
    n_rounds: int
    n_circuits: int
    n_events: int
    n_faults: int = 0
    n_retries: int = 0
    n_interrupted: int = 0
    downtime: float = 0.0
    metrics: MetricsSnapshot | None = None


class ChannelBlockedError(AssertionError):
    """A circuit process had to wait for a channel segment — meaning the
    wavelength assignment was not actually conflict-free."""


class LiveOpticalSimulation:
    """Event-driven replay of schedules on the optical ring.

    Args:
        config: System config; any static ``config.faults`` are degraded
            from time zero (the shared planner masks them).
        strategy: RWA strategy (``"first_fit"`` / ``"random_fit"``).
        rng: Seeded RNG (required for ``random_fit``).
        tracer: Optional tracer (``optical.live.*`` categories).
        fault_events: Mid-flight :class:`FaultEvent` s, activated at their
            fixed simulation times (sorted internally; validated against
            the config up front).
        max_retries: Retry budget per step before the run fails.
        backoff_base: First backoff duration; defaults to the MRR
            reconfiguration delay.
        backoff_factor: Multiplier per further attempt (exponential).
        metrics: Observability registry (default disabled); threaded into
            the kernel and the round planner, with a snapshot attached to
            the result. Recording never changes simulated timings.
        repair: Repair cached RWA solutions across fault events instead of
            re-solving every pattern from scratch (incremental DSATUR,
            :mod:`repro.optical.repair`). Off by default — repaired round
            structures are valid but need not match from-scratch ones, so
            the default timings stay bit-identical to earlier releases.
            Requires ``first_fit``.
        paranoid_repair: With ``repair``, cross-check every repair against
            a from-scratch recolor (the ``--paranoid-repair`` oracle).
        overlap: With the config's MRR tuning model enabled and no fault
            events, tune round k+1's free claims concurrently with round
            k's transmission (control plane racing the data plane). Off,
            or with fault events, tuning is charged serially before each
            round. Irrelevant while the model is disabled.
    """

    def __init__(
        self,
        config: OpticalSystemConfig,
        strategy: str = "first_fit",
        rng: SeededRng | None = None,
        tracer: Tracer | None = None,
        fault_events: Sequence[FaultEvent] = (),
        max_retries: int = 8,
        backoff_base: float | None = None,
        backoff_factor: float = 2.0,
        metrics: MetricsRegistry = NULL_METRICS,
        repair: bool = False,
        paranoid_repair: bool = False,
        overlap: bool = True,
    ) -> None:
        self.config = config
        self.overlap = overlap
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self._strategy = strategy
        self._rng = rng
        self.repair = repair
        self.paranoid_repair = paranoid_repair
        if repair and strategy == "random_fit":
            raise ValueError(
                "repair=True is deterministic and cannot preserve the "
                "random_fit RNG stream; use first_fit"
            )
        self.fault_events = tuple(
            sorted(
                fault_events,
                key=lambda e: (e.time, type(e.fault).__name__, repr(e.fault)),
            )
        )
        self.max_retries = int(max_retries)
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries!r}")
        self.backoff_base = (
            config.mrr_reconfig_delay if backoff_base is None else backoff_base
        )
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {backoff_base!r}")
        self.backoff_factor = backoff_factor
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {backoff_factor!r}"
            )
        if self.fault_events:
            # Fail fast on out-of-range faults (and fault sets that would
            # leave no node/wavelength alive) before simulating anything.
            merged = config.faults
            for event in self.fault_events:
                merged = merged.with_fault(event.fault)
            merged.validate(config.n_nodes, config.n_wavelengths)
        # Round planning is delegated to the executor so both paths share
        # routing, RWA, fallback and validation behaviour exactly. With
        # ``repair`` the planner keeps its full solutions so each fault
        # event's replacement planner can splice the delta in.
        self._planner = OpticalRingNetwork(
            config, strategy=strategy, rng=rng, validate=True, metrics=metrics,
            keep_solutions=repair,
        )

    def run(self, schedule: Schedule, bytes_per_elem: float = 4.0) -> LiveRunResult:
        """Replay ``schedule`` event by event.

        Requires materialized steps (the live path exists to exercise real
        step instances, not compressed patterns).

        Raises:
            ChannelBlockedError: A circuit blocked on a channel (RWA bug).
            BackendExecutionError: A step exhausted its retry budget.
            BackendError: Lowering against the degraded config failed (e.g.
                a mid-flight :class:`~repro.faults.models.DroppedNode` —
                retrying cannot help; the schedule must be replanned over
                the survivors with
                :func:`repro.faults.build_degraded_wrht_schedule`).
        """
        if schedule.n_nodes > self.config.n_nodes:
            raise ValueError(
                f"schedule spans {schedule.n_nodes} nodes but the ring has "
                f"{self.config.n_nodes}"
            )
        sim = Simulator(metrics=self.metrics)
        model = self.config.reconfig
        # Lookahead across rounds is only sound when the round structure is
        # fixed up front — faults replan mid-flight, so they force the
        # conservative serial charge.
        use_overlap = model.enabled and self.overlap and not self.fault_events
        channels: dict[tuple, Resource] = {}
        stats = {
            "rounds": 0, "circuits": 0, "steps": 0,
            "faults": 0, "retries": 0, "interrupted": 0, "downtime": 0.0,
        }
        # Mutable cells shared between the coordinator and the fault driver.
        state: dict = {
            "planner": self._planner,
            "faults": self.config.faults,
            "inflight": {},  # Process -> Circuit, current round only
            "done": False,
        }

        def channel(key: tuple) -> Resource:
            resource = channels.get(key)
            if resource is None:
                resource = Resource(sim, 1, name=f"chan{key}")
                channels[key] = resource
            return resource

        def circuit_process(circuit: Circuit):
            keys = [
                (circuit.route.direction.value, circuit.fiber,
                 circuit.wavelength, segment)
                for segment in sorted(circuit.route.segments)
            ]
            start = sim.now
            acquired: list[tuple] = []
            try:
                for key in keys:
                    request = channel(key).acquire()
                    if request.triggered:
                        # Granted synchronously — the token is held *now*,
                        # before the yield, so an interrupt arriving during
                        # the resume tick still sees it in ``acquired``.
                        acquired.append(key)
                        yield request
                    else:
                        yield request
                        acquired.append(key)
                if sim.now > start:
                    raise ChannelBlockedError(
                        f"circuit {circuit.transfer.src}->"
                        f"{circuit.transfer.dst} blocked acquiring its "
                        "channel — RWA conflict"
                    )
                yield sim.timeout(circuit.duration)
                return ("done", circuit)
            except Interrupted as interrupt:
                # A fault broke this circuit mid-flight. Report back as a
                # value (not a failure) so the round barrier completes
                # normally and the coordinator can retry the transfer.
                return ("interrupted", circuit, interrupt.cause)
            finally:
                for key in reversed(acquired):
                    channels[key].release()

        def fault_driver():
            elapsed = 0.0
            for event in self.fault_events:
                yield sim.timeout(event.time - elapsed)
                elapsed = event.time
                if state["done"]:
                    return
                stats["faults"] += 1
                state["faults"] = state["faults"].with_fault(event.fault)
                # Every subsequent RWA must see the degraded resources:
                # swap in a planner whose frozen config carries the
                # accumulated set (also re-salts the plan-cache keys).
                # Under ``repair`` the new planner chains to the previous
                # one and repairs its cached solutions incrementally —
                # each event repairs the *already repaired* state, so a
                # fault sequence pays O(delta) per event, not O(plan).
                if self.repair:
                    state["planner"] = state["planner"].repair_network(
                        state["faults"], paranoid=self.paranoid_repair
                    )
                else:
                    state["planner"] = OpticalRingNetwork(
                        replace(self.config, faults=state["faults"]),
                        strategy=self._strategy, rng=self._rng, validate=True,
                        metrics=self.metrics,
                    )
                broken = [
                    proc
                    for proc, circuit in state["inflight"].items()
                    if not proc.done
                    and state["faults"].affects_circuit(circuit, self.config)
                ]
                for proc in broken:
                    proc.interrupt(event.fault)
                self.tracer.emit(
                    sim.now, "optical.live.fault",
                    fault=repr(event.fault), n_interrupted=len(broken),
                )

        def coordinator():
            # Serial tuning state: claims of the last executed round. With
            # the model disabled no tuning branch fires, so the event
            # stream (and n_events) is byte-identical to earlier releases.
            prev_claims: tuple = ()
            for step in schedule.iter_steps():
                stats["steps"] += 1
                step_start = sim.now
                pending = step
                attempt = 0
                while True:
                    rounds = state["planner"].plan_step_rounds(
                        pending, bytes_per_elem
                    )
                    unfinished = []
                    for circuits in rounds:
                        stats["rounds"] += 1
                        if model.enabled:
                            claims = round_claims(circuits)
                            tune = exposed_tuning(
                                model, prev_claims, claims, 0.0, overlap=False
                            )
                            prev_claims = claims
                            if tune:
                                yield sim.timeout(tune)
                        yield sim.timeout(self.config.mrr_reconfig_delay)
                        processes = {
                            sim.process(circuit_process(c), name="circuit"): c
                            for c in circuits
                        }
                        stats["circuits"] += len(processes)
                        state["inflight"] = processes
                        yield sim.all_of(list(processes))
                        state["inflight"] = {}
                        for proc, circuit in processes.items():
                            if proc.value[0] == "interrupted":
                                stats["interrupted"] += 1
                                unfinished.append(circuit.transfer)
                        self.tracer.emit(
                            sim.now, "optical.live.round",
                            stage=step.stage, n_circuits=len(processes),
                        )
                    if not unfinished:
                        break
                    attempt += 1
                    if attempt > self.max_retries:
                        raise BackendExecutionError(
                            f"step {stats['steps'] - 1} still has "
                            f"{len(unfinished)} unfinished transfer(s) "
                            f"after {self.max_retries} retries",
                            backend="optical.live",
                            step_index=stats["steps"] - 1,
                        )
                    stats["retries"] += 1
                    backoff = self.backoff_base * (
                        self.backoff_factor ** (attempt - 1)
                    )
                    yield sim.timeout(backoff)
                    stats["downtime"] += backoff
                    self.tracer.emit(
                        sim.now, "optical.live.retry",
                        stage=step.stage, attempt=attempt,
                        n_transfers=len(unfinished),
                    )
                    pending = CommStep(
                        transfers=tuple(unfinished),
                        stage=step.stage, level=step.level,
                    )
                self.tracer.emit(
                    sim.now, "optical.live.step",
                    stage=step.stage, duration=sim.now - step_start,
                    attempts=attempt,
                )
                if self.metrics.enabled:
                    # Simulated per-step transfer time, retries included.
                    self.metrics.observe("optical.live.step_s", sim.now - step_start)
            state["done"] = True
            return sim.now

        def tune_process(duration: float):
            # Control-plane thermal settling of one round's free claims.
            yield sim.timeout(duration)
            return ("tuned", duration)

        def overlap_coordinator():
            # Fault-free overlapped mode: the planner is static, so every
            # round is known up front and round k+1's free-claim tuning can
            # be spawned the moment round k's circuits start transmitting.
            plans = [
                (step, state["planner"].plan_step_rounds(step, bytes_per_elem))
                for step in schedule.iter_steps()
            ]
            flat = [
                round_claims(circuits)
                for _, rounds in plans
                for circuits in rounds
            ]
            idx = 0
            free_proc = None  # tuning spawned during the previous round
            for step, rounds in plans:
                stats["steps"] += 1
                step_start = sim.now
                for circuits in rounds:
                    stats["rounds"] += 1
                    blocked, free = split_tuning(
                        model, flat[idx - 1] if idx else (), flat[idx]
                    )
                    if idx == 0:
                        # No previous transmission to hide behind.
                        tune = max(blocked, free)
                        if tune:
                            yield sim.timeout(tune)
                    else:
                        # Blocked claims wait for the previous round's
                        # teardown (this point) before tuning; the free
                        # tuning process has been racing that round's
                        # transmission — only its leftover is exposed.
                        waits = []
                        if free_proc is not None and not free_proc.done:
                            waits.append(free_proc)
                        if blocked:
                            waits.append(sim.timeout(blocked))
                        if waits:
                            yield sim.all_of(waits)
                    free_proc = None
                    yield sim.timeout(self.config.mrr_reconfig_delay)
                    if idx + 1 < len(flat):
                        _, next_free = split_tuning(model, flat[idx], flat[idx + 1])
                        if next_free:
                            free_proc = sim.process(
                                tune_process(next_free), name="tune"
                            )
                    processes = {
                        sim.process(circuit_process(c), name="circuit"): c
                        for c in circuits
                    }
                    stats["circuits"] += len(processes)
                    state["inflight"] = processes
                    yield sim.all_of(list(processes))
                    state["inflight"] = {}
                    self.tracer.emit(
                        sim.now, "optical.live.round",
                        stage=step.stage, n_circuits=len(processes),
                    )
                    idx += 1
                self.tracer.emit(
                    sim.now, "optical.live.step",
                    stage=step.stage, duration=sim.now - step_start,
                    attempts=0,
                )
                if self.metrics.enabled:
                    self.metrics.observe(
                        "optical.live.step_s", sim.now - step_start
                    )
            state["done"] = True
            return sim.now

        if self.fault_events:
            sim.process(fault_driver(), name="faults")
        total = sim.run_process(
            overlap_coordinator() if use_overlap else coordinator(),
            name="schedule",
        )
        if self.metrics.enabled:
            self.metrics.inc("optical.live.circuits", stats["circuits"])
            self.metrics.inc("optical.live.rounds", stats["rounds"])
            self.metrics.inc("optical.live.retries", stats["retries"])
            self.metrics.inc("optical.live.faults", stats["faults"])
            self.metrics.inc("optical.live.interrupted", stats["interrupted"])
            self.metrics.gauge("optical.live.downtime_s", stats["downtime"])
        return LiveRunResult(
            algorithm=schedule.algorithm,
            total_time=total,
            n_steps=stats["steps"],
            n_rounds=stats["rounds"],
            n_circuits=stats["circuits"],
            n_events=sim.n_processed,
            n_faults=stats["faults"],
            n_retries=stats["retries"],
            n_interrupted=stats["interrupted"],
            downtime=stats["downtime"],
            metrics=self.metrics.snapshot() if self.metrics.enabled else None,
        )
