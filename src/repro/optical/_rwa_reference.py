"""Seed (pre-bitmask) RWA implementation, kept verbatim as a parity oracle.

The production kernel in :mod:`repro.optical.rwa` represents segment sets as
arbitrary-precision integer bitmasks. This module preserves the original
numpy-boolean-array implementation it replaced, for two purposes only:

- the parity property tests (``tests/optical/test_rwa_parity.py``) assert
  the bitmask kernel produces *identical* assignments and round structure
  on random instances, both strategies, multiple fibers, blocked
  wavelengths;
- ``benchmarks/bench_rwa.py`` times it to report honest before/after
  numbers in ``BENCH_rwa.json``.

Nothing in the library imports this module at runtime. Do not optimise it —
its value is being the frozen seed semantics.
"""

from __future__ import annotations

import numpy as np

from repro.optical.rwa import STRATEGIES, AssignmentResult
from repro.optical.topology import Direction, Route
from repro.sim.rng import SeededRng
from repro.util.validation import check_positive_int


def dsatur_assign_reference(
    routes: list[Route],
    n_segments: int,
    n_wavelengths: int,
    fibers_per_direction: int = 1,
    blocked: frozenset[int] = frozenset(),
) -> AssignmentResult | None:
    """Seed DSATUR: frozenset-intersection adjacency, linear-scan selection."""
    n = len(routes)
    if n == 0:
        return AssignmentResult()
    seg_sets = [frozenset(r.segments) for r in routes]
    adjacency: list[set[int]] = [set() for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if routes[i].direction is routes[j].direction and seg_sets[i] & seg_sets[j]:
                adjacency[i].add(j)
                adjacency[j].add(i)
    allowed = [
        (f, lam)
        for f in range(fibers_per_direction)
        for lam in range(n_wavelengths)
        if lam not in blocked
    ]
    capacity = len(allowed)
    colors: dict[int, int] = {}
    neighbour_colors: list[set[int]] = [set() for _ in range(n)]
    uncolored = set(range(n))
    while uncolored:
        # Highest saturation, ties by degree then index (deterministic).
        pick = max(
            uncolored,
            key=lambda v: (len(neighbour_colors[v]), len(adjacency[v]), -v),
        )
        color = 0
        taken = neighbour_colors[pick]
        while color in taken:
            color += 1
        if color >= capacity:
            return None
        colors[pick] = color
        uncolored.discard(pick)
        for peer in adjacency[pick]:
            neighbour_colors[peer].add(color)
    result = AssignmentResult()
    for idx, color in colors.items():
        fiber, lam = allowed[color]
        result.assigned[idx] = (fiber, lam)
        result.peak_wavelength = max(result.peak_wavelength, lam + 1)
    return result


class _ChannelOccupancy:
    """Per-direction segment occupancy of every (fiber, wavelength)."""

    def __init__(self, n_segments: int, n_fibers: int, n_wavelengths: int) -> None:
        self.n_segments = n_segments
        self.n_fibers = n_fibers
        self.n_wavelengths = n_wavelengths
        self._busy = np.zeros((n_fibers, n_wavelengths, n_segments), dtype=bool)

    def fits(self, fiber: int, wavelength: int, segments: np.ndarray) -> bool:
        return not self._busy[fiber, wavelength, segments].any()

    def take(self, fiber: int, wavelength: int, segments: np.ndarray) -> None:
        self._busy[fiber, wavelength, segments] = True


def assign_wavelengths_reference(
    routes: list[Route],
    n_segments: int,
    n_wavelengths: int,
    fibers_per_direction: int = 1,
    strategy: str = "first_fit",
    rng: SeededRng | None = None,
    blocked: frozenset[int] = frozenset(),
) -> AssignmentResult:
    """Seed single-round assignment: numpy fancy-indexed occupancy probes."""
    check_positive_int("n_segments", n_segments)
    check_positive_int("n_wavelengths", n_wavelengths)
    check_positive_int("fibers_per_direction", fibers_per_direction)
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    if strategy == "random_fit" and rng is None:
        raise ValueError("random_fit requires an rng")

    occupancy = {
        direction: _ChannelOccupancy(n_segments, fibers_per_direction, n_wavelengths)
        for direction in Direction
    }
    result = AssignmentResult()
    # Longest routes are hardest to place; assign them first. Ties keep the
    # original order so the outcome is deterministic.
    order = sorted(range(len(routes)), key=lambda i: (-routes[i].hops, i))
    for idx in order:
        route = routes[idx]
        segments = np.asarray(route.segments, dtype=np.intp)
        occ = occupancy[route.direction]
        channels = [
            (f, lam)
            for f in range(fibers_per_direction)
            for lam in range(n_wavelengths)
            if lam not in blocked
        ]
        if strategy == "random_fit":
            rng.shuffle(channels)
        placed = False
        for fiber, lam in channels:
            if occ.fits(fiber, lam, segments):
                occ.take(fiber, lam, segments)
                result.assigned[idx] = (fiber, lam)
                result.peak_wavelength = max(result.peak_wavelength, lam + 1)
                placed = True
                break
        if not placed:
            result.unassigned.append(idx)
    return result


def plan_rounds_reference(
    routes: list[Route],
    n_segments: int,
    n_wavelengths: int,
    fibers_per_direction: int = 1,
    strategy: str = "first_fit",
    rng: SeededRng | None = None,
    dsatur_fallback: bool = True,
    blocked: frozenset[int] = frozenset(),
) -> list[dict[int, tuple[int, int]]]:
    """Seed multi-round splitting over the reference single-round kernel."""
    remaining = list(range(len(routes)))
    rounds: list[dict[int, tuple[int, int]]] = []
    first = True
    while remaining:
        subset = [routes[i] for i in remaining]
        assignment = assign_wavelengths_reference(
            subset, n_segments, n_wavelengths, fibers_per_direction,
            strategy=strategy, rng=rng, blocked=blocked,
        )
        if first and assignment.unassigned and dsatur_fallback:
            structured = dsatur_assign_reference(
                subset, n_segments, n_wavelengths, fibers_per_direction,
                blocked=blocked,
            )
            if structured is not None:
                assignment = structured
        first = False
        if not assignment.assigned:
            raise RuntimeError(
                "RWA failed to place any transfer on an empty round; "
                "file a bug"
            )
        rounds.append(
            {remaining[local]: chan for local, chan in assignment.assigned.items()}
        )
        remaining = [remaining[j] for j in assignment.unassigned]
    return rounds
