"""Per-route physical-layer validation (Sec 4.4 applied to actual paths).

:mod:`repro.core.constraints` answers the *planning* question ("what group
size keeps the worst-case WRHT path within budget?"). This module answers
the *execution* question for each concrete circuit: does this route's hop
count satisfy the insertion-loss budget (Eq 9) and the BER target (Eq 13)?
The executor runs these checks when the system config carries
:class:`~repro.core.constraints.OpticalPhyParams`.
"""

from __future__ import annotations

from repro.core.constraints import (
    OpticalPhyParams,
    ber_from_snr,
    insertion_loss_db,
    snr_db,
    worst_case_crosstalk_power,
)
from repro.optical.topology import Route


class PhyViolationError(ValueError):
    """A route exceeds the optical power or BER budget."""


def path_feasible(hops: int, params: OpticalPhyParams) -> bool:
    """Both Sec 4.4 constraints for a path of ``hops`` passed interfaces."""
    if hops < 0:
        raise ValueError(f"hops must be >= 0, got {hops!r}")
    loss_ok = params.laser_power_dbm >= (
        insertion_loss_db(hops, params) + params.extinction_ratio_penalty_db
    )
    noise = worst_case_crosstalk_power(hops, params)
    ber = ber_from_snr(snr_db(params.signal_power_mw, noise, params.other_noise_mw))
    return loss_ok and ber <= params.max_ber


def max_feasible_hops(params: OpticalPhyParams, upper: int = 1 << 20) -> int:
    """Longest path (in hops) satisfying both constraints.

    Both constraints are monotone in the hop count, so binary search.
    """
    if not path_feasible(1, params):
        return 0
    lo, hi = 1, 1
    while hi < upper and path_feasible(hi, params):
        lo, hi = hi, hi * 2
    hi = min(hi, upper)
    # The doubling loop can exit on the ``hi < upper`` bound with
    # ``path_feasible(hi)`` still true (every hop count up to ``upper`` is
    # feasible). The bisection below assumes ``hi`` is infeasible and would
    # converge to ``upper - 1``; answer directly instead.
    if path_feasible(hi, params):
        return hi
    while lo < hi - 1:
        mid = (lo + hi) // 2
        if path_feasible(mid, params):
            lo = mid
        else:
            hi = mid
    return lo


def mrr_tuning_time(
    wavelength: int, t_tune: float, tune_per_channel: float = 0.0
) -> float:
    """Seconds to retune one MRR onto ``wavelength``.

    The physical model behind :class:`repro.optical.reconfig.ReconfigModel`:
    a fixed thermal settling time ``t_tune`` per MRR, plus an optional term
    linear in the spectral distance from the parked resonance (index 0) —
    thermo-optic tuning sweeps the resonance across the comb, so distant
    channels take proportionally longer to lock.
    """
    if wavelength < 0:
        raise ValueError(f"wavelength must be >= 0, got {wavelength!r}")
    if t_tune < 0 or tune_per_channel < 0:
        raise ValueError("tuning times must be >= 0")
    return t_tune + tune_per_channel * wavelength


def validate_route_phy(route: Route, params: OpticalPhyParams) -> None:
    """Raise :class:`PhyViolationError` if ``route`` exceeds the budget.

    Thin raising wrapper over the static rule implementation
    (:func:`repro.check.plan_rules.route_phy_findings`) so the executor's
    runtime check and the plan verifier can never disagree.
    """
    from repro.check.plan_rules import route_phy_findings

    findings = route_phy_findings(route, params)
    if findings:
        raise PhyViolationError(findings[0].message)
