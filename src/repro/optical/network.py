"""Step-synchronous executor: price a schedule on the optical ring.

Execution model (the paper's, Sec 4.2/4.3): steps are barriers. Before each
round of a step the MRRs are reconfigured (25 µs); the round's circuits then
transmit concurrently, and the round lasts as long as its slowest payload
(serialization at the per-wavelength line rate plus per-packet O/E/O
conversion). A step that fits the wavelength budget is one round; wavelength
scarcity spills the unplaced transfers into follow-up rounds — this is how
e.g. H-Ring's ``⌈m/w⌉ > 1`` regime or WRHT under tiny ``w`` cost extra time
without any special-casing.

Steps with identical communication patterns take identical time, so the
executor prices each distinct pattern once and multiplies — Ring All-reduce
at N=4096 (8190 steps) costs two RWA computations, not 33 million transfer
events. The correctness of that compression is property-tested against
uncompressed execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collectives.base import CommStep, Schedule
from repro.core.timing import CostModel
from repro.optical.circuit import Circuit, validate_no_conflicts
from repro.optical.config import OpticalSystemConfig
from repro.optical.node import validate_node_constraints
from repro.optical.phy import validate_route_phy
from repro.optical.rwa import plan_rounds
from repro.optical.topology import RingTopology
from repro.sim.rng import SeededRng
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class StepTiming:
    """Timing of one profile entry (a run of identical-pattern steps).

    Attributes:
        stage: The representative step's stage label.
        count: How many consecutive steps share this pattern.
        n_transfers: Concurrent transfers per step.
        rounds: RWA rounds each step needed.
        duration: Seconds per step (all rounds included).
        peak_wavelength: Distinct wavelength indices touched in a step.
        bytes_per_step: Total payload bytes a single step moves.
    """

    stage: str
    count: int
    n_transfers: int
    rounds: int
    duration: float
    peak_wavelength: int
    bytes_per_step: float


@dataclass
class OpticalRunResult:
    """Result of pricing a schedule on the optical substrate.

    Attributes:
        algorithm: Schedule name.
        n_steps: Total communication steps.
        total_time: End-to-end communication seconds.
        total_bytes: Payload bytes moved across all steps.
        step_timings: One entry per profile run.
        peak_wavelength: Max wavelengths any round used.
    """

    algorithm: str
    n_steps: int
    total_time: float
    total_bytes: float
    step_timings: list[StepTiming] = field(default_factory=list)
    peak_wavelength: int = 0

    @property
    def total_rounds(self) -> int:
        """Reconfiguration rounds across the whole run."""
        return sum(t.rounds * t.count for t in self.step_timings)


class OpticalRingNetwork:
    """The optical interconnect substrate's schedule executor."""

    def __init__(
        self,
        config: OpticalSystemConfig,
        strategy: str = "first_fit",
        rng: SeededRng | None = None,
        tracer: Tracer | None = None,
        validate: bool = True,
    ) -> None:
        self.config = config
        self.topology = RingTopology(config.n_nodes)
        self.strategy = strategy
        self.rng = rng.fork("rwa") if rng is not None else None
        if strategy == "random_fit" and self.rng is None:
            raise ValueError("random_fit requires an rng")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.validate = validate
        self._cost = config.cost_model()

    @property
    def cost_model(self) -> CostModel:
        """The analytical cost model this substrate is consistent with."""
        return self._cost

    def execute(self, schedule: Schedule, bytes_per_elem: float = 4.0) -> OpticalRunResult:
        """Price ``schedule`` end to end.

        Args:
            schedule: Any schedule whose node ids fit this ring.
            bytes_per_elem: Gradient element width (float32 → 4).

        Returns:
            An :class:`OpticalRunResult`; deterministic for ``first_fit``.
        """
        if schedule.n_nodes > self.config.n_nodes:
            raise ValueError(
                f"schedule spans {schedule.n_nodes} nodes but the ring has "
                f"{self.config.n_nodes}"
            )
        if bytes_per_elem <= 0:
            raise ValueError(f"bytes_per_elem must be positive, got {bytes_per_elem!r}")
        result = OpticalRunResult(
            algorithm=schedule.algorithm, n_steps=schedule.n_steps,
            total_time=0.0, total_bytes=0.0,
        )
        cache: dict[tuple, StepTiming] = {}
        clock = 0.0
        for step, count in schedule.timing_profile:
            key = step.pattern_key()
            timing = cache.get(key)
            if timing is None:
                timing = self._time_step(step, count, bytes_per_elem, clock)
                cache[key] = timing
            else:
                # Same pattern appearing again (e.g. non-adjacent runs): keep
                # the measured timing, adjust the run length.
                timing = StepTiming(
                    stage=step.stage, count=count,
                    n_transfers=timing.n_transfers, rounds=timing.rounds,
                    duration=timing.duration,
                    peak_wavelength=timing.peak_wavelength,
                    bytes_per_step=timing.bytes_per_step,
                )
            result.step_timings.append(timing)
            result.total_time += timing.duration * count
            result.total_bytes += timing.bytes_per_step * count
            result.peak_wavelength = max(result.peak_wavelength, timing.peak_wavelength)
            clock = result.total_time
        return result

    # -- internals ------------------------------------------------------
    def _route_step(self, step: CommStep) -> list:
        """Shortest-path routing with balanced tie directions.

        Diameter ties (even rings) alternate CW/CCW in sorted (src, dst)
        order; piling all ties into one direction would overload its fibers
        and break the ``⌈k²/8⌉`` all-to-all bound.
        """
        routes = [None] * len(step.transfers)
        ties = []
        for i, t in enumerate(step.transfers):
            cw = self.topology.cw_distance(t.src, t.dst)
            ccw = self.topology.ccw_distance(t.src, t.dst)
            if cw < ccw:
                routes[i] = self.topology.cw_route(t.src, t.dst)
            elif ccw < cw:
                routes[i] = self.topology.ccw_route(t.src, t.dst)
            else:
                ties.append(i)
        ties.sort(key=lambda i: (step.transfers[i].src, step.transfers[i].dst))
        for rank, i in enumerate(ties):
            t = step.transfers[i]
            if rank % 2 == 0:
                routes[i] = self.topology.cw_route(t.src, t.dst)
            else:
                routes[i] = self.topology.ccw_route(t.src, t.dst)
        return routes

    def plan_step_rounds(
        self, step: CommStep, bytes_per_elem: float
    ) -> list[list[Circuit]]:
        """Route, wavelength-assign and circuit-ify one step's rounds.

        Shared by the step-timing path below and the live event-driven
        simulation (:mod:`repro.optical.livesim`), so both views of a step
        have the identical round structure.
        """
        transfers = list(step.transfers)
        routes = self._route_step(step)
        if self.config.phy is not None:
            for route in routes:
                validate_route_phy(route, self.config.phy)
        rounds = plan_rounds(
            routes,
            n_segments=self.config.n_nodes,
            n_wavelengths=self.config.n_wavelengths,
            fibers_per_direction=self.config.fibers_per_direction,
            strategy=self.strategy,
            rng=self.rng,
            blocked=self.config.failed_wavelengths,
        )
        circuit_rounds: list[list[Circuit]] = []
        for assignment in rounds:
            circuits = []
            for idx, (fiber, lam) in assignment.items():
                t = transfers[idx]
                payload = t.n_elems * bytes_per_elem
                circuits.append(
                    Circuit(
                        transfer=t, route=routes[idx], fiber=fiber,
                        wavelength=lam, payload_bytes=payload,
                        duration=self._cost.payload_time(payload),
                    )
                )
            if self.validate:
                validate_no_conflicts(circuits)
                validate_node_constraints(
                    [(c.transfer, c.route, c.fiber, c.wavelength) for c in circuits],
                    mrrs_per_interface=self.config.n_wavelengths,
                )
            circuit_rounds.append(circuits)
        return circuit_rounds

    def _time_step(
        self, step: CommStep, count: int, bytes_per_elem: float, clock: float
    ) -> StepTiming:
        circuit_rounds = self.plan_step_rounds(step, bytes_per_elem)
        duration = 0.0
        peak = 0
        step_bytes = 0.0
        for round_no, circuits in enumerate(circuit_rounds, start=1):
            round_max = max(c.duration for c in circuits)
            peak = max(peak, max(c.wavelength for c in circuits) + 1)
            step_bytes += sum(c.payload_bytes for c in circuits)
            duration += self.config.mrr_reconfig_delay + round_max
            self.tracer.emit(
                clock + duration, "optical.round",
                stage=step.stage, round=round_no,
                n_circuits=len(circuits), max_payload_s=round_max,
                peak_wavelength=max(c.wavelength for c in circuits) + 1,
            )
        return StepTiming(
            stage=step.stage, count=count, n_transfers=step.n_transfers,
            rounds=len(circuit_rounds), duration=duration,
            peak_wavelength=peak, bytes_per_step=step_bytes,
        )
