"""Step-synchronous executor: price a schedule on the optical ring.

Execution model (the paper's, Sec 4.2/4.3): steps are barriers. Before each
round of a step the MRRs are reconfigured (25 µs); the round's circuits then
transmit concurrently, and the round lasts as long as its slowest payload
(serialization at the per-wavelength line rate plus per-packet O/E/O
conversion). A step that fits the wavelength budget is one round; wavelength
scarcity spills the unplaced transfers into follow-up rounds — this is how
e.g. H-Ring's ``⌈m/w⌉ > 1`` regime or WRHT under tiny ``w`` cost extra time
without any special-casing.

Since the unified backend refactor the executor follows the two-stage
lowering contract (:mod:`repro.backend.base`): :meth:`OpticalRingNetwork.lower`
routes, wavelength-assigns and prices each distinct step pattern (through
the cross-run :mod:`repro.backend.plancache`), and
:meth:`OpticalRingNetwork.execute_plan` folds the lowered plan into a
timeline. ``execute()`` composes the two and is bit-identical to the
pre-refactor single-pass executor (asserted by regression tests).

Steps with identical communication patterns take identical time, so the
lowering prices each distinct pattern once and the fold multiplies — Ring
All-reduce at N=4096 (8190 steps) costs two RWA computations, not 33 million
transfer events. The correctness of that compression is property-tested
against uncompressed execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.backend.base import LoweredPlan, LoweredStep
from repro.backend.errors import BackendConfigError, BackendError
from repro.backend.plancache import (
    CachedRound,
    PlanCache,
    PlanCacheCounters,
    default_plan_cache,
    delta_salted_key,
)
from repro.collectives.base import CommStep, Schedule
from repro.core.timing import CostModel
from repro.obs.metrics import COUNT_EDGES, NULL_METRICS, MetricsRegistry
from repro.optical.circuit import Circuit, validate_no_conflicts
from repro.optical.config import OpticalSystemConfig
from repro.optical.node import validate_node_constraints
from repro.optical.phy import validate_route_phy
from repro.optical.reconfig import apply_reconfig, round_claims
from repro.optical.repair import RwaContext, capture_solution, repair_rounds
from repro.optical.rwa import plan_rounds
from repro.optical.topology import RingTopology
from repro.sim.rng import SeededRng
from repro.sim.trace import NULL_TRACER, Tracer

BACKEND_NAME = "optical"


@dataclass(frozen=True)
class StepTiming:
    """Timing of one profile entry (a run of identical-pattern steps).

    Attributes:
        stage: The representative step's stage label.
        count: How many consecutive steps share this pattern.
        n_transfers: Concurrent transfers per step.
        rounds: RWA rounds each step needed.
        duration: Seconds per step (all rounds included).
        peak_wavelength: Distinct wavelength indices touched in a step.
        bytes_per_step: Total payload bytes a single step moves.
    """

    stage: str
    count: int
    n_transfers: int
    rounds: int
    duration: float
    peak_wavelength: int
    bytes_per_step: float


@dataclass
class OpticalRunResult:
    """Result of pricing a schedule on the optical substrate.

    Attributes:
        algorithm: Schedule name.
        n_steps: Total communication steps.
        total_time: End-to-end communication seconds.
        total_bytes: Payload bytes moved across all steps.
        step_timings: One entry per profile run.
        peak_wavelength: Max wavelengths any round used.
        cache: Plan-cache hit/miss/eviction tallies for *this* run (zeros
            for ``random_fit``, which bypasses the cross-run cache, and
            when the cache is disabled).
    """

    algorithm: str
    n_steps: int
    total_time: float
    total_bytes: float
    step_timings: list[StepTiming] = field(default_factory=list)
    peak_wavelength: int = 0
    cache: PlanCacheCounters = field(default_factory=PlanCacheCounters)

    @property
    def total_rounds(self) -> int:
        """Reconfiguration rounds across the whole run."""
        return sum(t.rounds * t.count for t in self.step_timings)


class OpticalRingNetwork:
    """The optical interconnect substrate's schedule executor."""

    def __init__(
        self,
        config: OpticalSystemConfig,
        strategy: str = "first_fit",
        rng: SeededRng | None = None,
        tracer: Tracer | None = None,
        validate: bool = True,
        plan_cache: PlanCache | None = None,
        metrics: MetricsRegistry = NULL_METRICS,
        keep_solutions: bool = False,
        repair_from: "OpticalRingNetwork | None" = None,
        paranoid_repair: bool = False,
        overlap: bool = True,
        capture_claims: bool | None = None,
    ) -> None:
        self.config = config
        self.topology = RingTopology(config.n_nodes)
        self.strategy = strategy
        self.rng = rng.fork("rwa") if rng is not None else None
        if strategy == "random_fit" and self.rng is None:
            raise ValueError("random_fit requires an rng")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.validate = validate
        # Cross-run plan cache (default: the process-wide shared one). The
        # key salts every pricing-relevant knob: the frozen config (which
        # covers failed_wavelengths and the PHY parameters), the strategy
        # and the validate flag — changing any of them is a new key, so no
        # explicit invalidation is ever needed.
        self.plan_cache = default_plan_cache() if plan_cache is None else plan_cache
        self._plan_key_base = (config, strategy, validate)
        self._cost = config.cost_model()
        # Incremental-repair wiring. ``keep_solutions`` retains the full
        # per-pattern RWA solutions (not just priced summaries) so a later
        # network can repair them; ``repair_from`` chains this network to a
        # base whose solutions it repairs instead of re-solving. Repaired
        # patterns get *delta-salted* plan-cache keys — (base key, fault
        # diff) rather than the final config — so a repaired coloring can
        # never collide with a from-scratch entry for the same fault set.
        self.keep_solutions = keep_solutions
        self.paranoid_repair = paranoid_repair
        self._solutions: dict[tuple, "object"] = {}
        self._repair_base = repair_from
        if repair_from is not None:
            if strategy == "random_fit":
                raise ValueError(
                    "incremental repair is deterministic and cannot preserve "
                    "the random_fit RNG stream; use first_fit"
                )
            diff = tuple(
                f
                for f in config.faults.faults
                if f not in set(repair_from.config.faults.faults)
            )
            self._plan_key_base = delta_salted_key(
                repair_from._plan_key_base, ("fault-delta", diff)
            )
        # Fault-derived views, hoisted so the per-step path pays nothing
        # when the fault set is empty (every one of these is then falsy and
        # the lowering takes the exact pre-fault code paths).
        faults = config.faults
        self._dead_nodes = faults.dead_nodes
        self._port_faults_active = bool(faults.port_faults)
        self._quarantine = faults.segment_quarantine_masks(config.n_nodes) or None
        self._has_cuts = bool(faults.cut_segments)
        self._phy = config.effective_phy
        # Reconfiguration model (repro.optical.reconfig). Claims are only
        # captured when the model is enabled (or explicitly requested for
        # tests), so the disabled path produces byte-identical CachedRound
        # summaries; a claims-bearing summary under a tuning-free config
        # gets its own cache namespace.
        self._reconfig = config.reconfig
        self.overlap = overlap
        self._capture_claims = (
            self._reconfig.enabled if capture_claims is None else capture_claims
        )
        if self._capture_claims and not self._reconfig.enabled:
            self._plan_key_base = (self._plan_key_base, "claims")

    @property
    def cost_model(self) -> CostModel:
        """The analytical cost model this substrate is consistent with."""
        return self._cost

    def lower(
        self,
        schedule: Schedule,
        bytes_per_elem: float = 4.0,
        *,
        partition: bool = False,
    ) -> LoweredPlan:
        """Route, wavelength-assign and price every distinct step pattern.

        Patterns are priced once per call (per-plan dedup) and memoized in
        the cross-run plan cache for deterministic strategies; repeats are
        marked ``replay`` so execution can trace them compactly.

        With ``partition=True`` (the reconfigure-vs-hold estimator's *hold*
        variant) adjacent profile entries are confined to alternating
        halves of the wavelength budget, making their MRR claims channel-
        disjoint — every retune overlaps the previous step's transmission —
        at the cost of extra rounds when a step no longer fits its half.

        When the config's reconfiguration model is enabled
        (``t_tune > 0``), the plan is annotated by
        :func:`repro.optical.reconfig.apply_reconfig` before returning.

        Raises:
            BackendConfigError: On a schedule/width mismatch at entry.
            BackendError: From RWA infeasibility (including a partition
                that leaves a half-budget empty), annotated with the
                backend name and failing profile-entry index.
        """
        if partition and self.config.n_wavelengths < 2:
            raise BackendError(
                "wavelength partition needs at least 2 wavelengths",
                backend=BACKEND_NAME,
            )
        if schedule.n_nodes > self.config.n_nodes:
            raise BackendConfigError(
                f"schedule spans {schedule.n_nodes} nodes but the ring has "
                f"{self.config.n_nodes}",
                backend=BACKEND_NAME,
            )
        if bytes_per_elem <= 0:
            raise BackendConfigError(
                f"bytes_per_elem must be positive, got {bytes_per_elem!r}",
                backend=BACKEND_NAME,
            )
        counters = PlanCacheCounters()
        # Deterministic strategies only (a random_fit hit would skip the
        # RNG draws an uncached run performs, changing every later
        # assignment in the stream).
        use_cache = self.plan_cache.enabled and self.strategy != "random_fit"
        half = self.config.n_wavelengths // 2
        lower_half = frozenset(range(half))
        upper_half = frozenset(range(half, self.config.n_wavelengths))
        priced: dict[tuple, tuple[CachedRound, ...]] = {}
        entries: list[LoweredStep] = []
        for index, (step, count, key) in enumerate(schedule.lowering_profile()):
            extra_blocked = None
            if partition:
                # Even entries use the lower half, odd entries the upper —
                # adjacent steps can never claim the same channel.
                parity = index % 2
                extra_blocked = upper_half if parity == 0 else lower_half
                key = (key, ("partition", parity))
            rounds = priced.get(key)
            replay = rounds is not None
            if rounds is None:
                try:
                    rounds = self._price_pattern(
                        step, key, bytes_per_elem, use_cache, counters,
                        extra_blocked=extra_blocked,
                    )
                except BackendError as exc:
                    if exc.backend is None:
                        exc.backend = BACKEND_NAME
                    if exc.step_index is None:
                        exc.step_index = index
                    raise
                priced[key] = rounds
            entries.append(
                LoweredStep(
                    stage=step.stage,
                    count=count,
                    n_transfers=step.n_transfers,
                    payload=rounds,
                    replay=replay,
                )
            )
        if self.metrics.enabled:
            self.metrics.inc("plan_cache.hits", counters.hits)
            self.metrics.inc("plan_cache.misses", counters.misses)
            self.metrics.inc("plan_cache.evictions", counters.evictions)
        meta: dict = {}
        if schedule.meta.get("plan") is not None:
            # Carried so the static verifier (repro.check) can audit group
            # size / step count from the lowered plan alone.
            meta["wrht_plan"] = schedule.meta["plan"]
        if schedule.meta.get("participants") is not None:
            # Degraded (shrunk-node) schedules span fewer compute endpoints
            # than the ring has; the verifier needs the participant set to
            # audit dataflow and step counts against the survivor count.
            meta["participants"] = schedule.meta["participants"]
        plan = LoweredPlan(
            backend=BACKEND_NAME,
            algorithm=schedule.algorithm,
            n_nodes=schedule.n_nodes,
            n_steps=schedule.n_steps,
            bytes_per_elem=bytes_per_elem,
            entries=tuple(entries),
            cache=counters,
            meta=meta,
        )
        if self._reconfig.enabled:
            plan = apply_reconfig(plan, self._reconfig, overlap=self.overlap)
            if partition:
                plan.meta["reconfig"]["partition"] = True
            if self.metrics.enabled:
                self.metrics.gauge(
                    "optical.reconfig.exposed_tune_s",
                    plan.meta["reconfig"]["exposed_tune_s"],
                )
        return plan

    def execute_plan(self, plan: LoweredPlan) -> OpticalRunResult:
        """Fold a lowered plan into the run timeline (no RWA, no cache).

        Fresh entries replay their ``optical.round`` trace events; replay
        entries emit one ``optical.step_cached`` summary event. The floats
        and their accumulation order are identical to fresh pricing, so
        executing the same plan twice is bit-exact.
        """
        result = OpticalRunResult(
            algorithm=plan.algorithm, n_steps=plan.n_steps,
            total_time=0.0, total_bytes=0.0,
            cache=PlanCacheCounters(**plan.cache.as_dict()),
        )
        clock = 0.0
        for entry in plan.entries:
            timing = self._timing_from_rounds(
                entry, entry.payload, clock, emit_rounds=not entry.replay
            )
            if entry.replay:
                self.tracer.emit(
                    clock, "optical.step_cached",
                    stage=entry.stage, count=entry.count, rounds=timing.rounds,
                    duration=timing.duration,
                    peak_wavelength=timing.peak_wavelength,
                )
            result.step_timings.append(timing)
            result.total_time += timing.duration * entry.count
            result.total_bytes += timing.bytes_per_step * entry.count
            result.peak_wavelength = max(result.peak_wavelength, timing.peak_wavelength)
            clock = result.total_time
            if self.metrics.enabled:
                # Simulated, per distinct profile entry — deterministic.
                self.metrics.observe("optical.step.duration_s", timing.duration)
                self.metrics.observe(
                    "optical.step.rounds", float(timing.rounds), edges=COUNT_EDGES
                )
                self.metrics.observe(
                    "optical.step.wavelengths",
                    float(timing.peak_wavelength),
                    edges=COUNT_EDGES,
                )
        return result

    def execute(self, schedule: Schedule, bytes_per_elem: float = 4.0) -> OpticalRunResult:
        """Price ``schedule`` end to end (``lower`` + ``execute_plan``).

        Args:
            schedule: Any schedule whose node ids fit this ring.
            bytes_per_elem: Gradient element width (float32 → 4).

        Returns:
            An :class:`OpticalRunResult`; deterministic for ``first_fit``.
        """
        return self.execute_plan(self.lower(schedule, bytes_per_elem))

    # -- internals ------------------------------------------------------
    def _route_step(self, step: CommStep) -> list:
        """Shortest-path routing with balanced tie directions.

        Diameter ties (even rings) alternate CW/CCW in sorted (src, dst)
        order; piling all ties into one direction would overload its fibers
        and break the ``⌈k²/8⌉`` all-to-all bound.

        Cut fiber segments force a detour: a route crossing a cut takes the
        long way around in the opposite direction (with both directions cut
        between the endpoints there is no path and lowering fails).
        """
        routes = [None] * len(step.transfers)
        ties = []
        # REP006: shortest-path routing is per-pair graph lookups with a
        # data-dependent tie list — no array form; RWA and pricing are the
        # vectorized hot paths.
        for i, t in enumerate(step.transfers):
            cw = self.topology.cw_distance(t.src, t.dst)
            ccw = self.topology.ccw_distance(t.src, t.dst)
            if cw < ccw:
                routes[i] = self.topology.cw_route(t.src, t.dst)
            elif ccw < cw:
                routes[i] = self.topology.ccw_route(t.src, t.dst)
            else:
                ties.append(i)
        ties.sort(key=lambda i: (step.transfers[i].src, step.transfers[i].dst))
        for rank, i in enumerate(ties):
            t = step.transfers[i]
            if rank % 2 == 0:
                routes[i] = self.topology.cw_route(t.src, t.dst)
            else:
                routes[i] = self.topology.ccw_route(t.src, t.dst)
        if self._has_cuts:
            routes = [
                self._detour_around_cuts(t, route)
                for t, route in zip(step.transfers, routes)
            ]
        return routes

    def _detour_around_cuts(self, transfer, route):
        """Reroute in the opposite ring direction if ``route`` is severed."""
        faults = self.config.faults
        if not any(faults.is_cut(s, route.direction) for s in route.segments):
            return route
        alt = self.topology.route(
            transfer.src, transfer.dst, route.direction.opposite()
        )
        if any(faults.is_cut(s, alt.direction) for s in alt.segments):
            raise BackendError(
                f"no usable path {transfer.src} -> {transfer.dst}: fiber is "
                f"cut in both ring directions",
                backend=BACKEND_NAME,
            )
        return alt

    def plan_step_rounds(
        self,
        step: CommStep,
        bytes_per_elem: float,
        validate: bool | None = None,
        extra_blocked: frozenset[int] | None = None,
    ) -> list[list[Circuit]]:
        """Route, wavelength-assign and circuit-ify one step's rounds.

        Shared by the lowering path below, the live event-driven simulation
        (:mod:`repro.optical.livesim`) and the static plan verifier
        (:mod:`repro.check`), so every view of a step has the identical
        round structure. ``validate`` overrides the instance-level runtime
        validation flag — the verifier passes ``False`` so that defects
        surface as findings instead of exceptions. ``extra_blocked`` bans
        additional wavelength indices for this step only (the hold
        variant's alternating partition).
        """
        if validate is None:
            validate = self.validate
        transfers = list(step.transfers)
        if validate and self._dead_nodes:
            dead = self._dead_nodes
            bad = next(
                (t for t in transfers if t.src in dead or t.dst in dead), None
            )
            if bad is not None:
                raise BackendConfigError(
                    f"transfer {bad.src} -> {bad.dst} touches a dropped "
                    f"node; replan the schedule over the survivors "
                    f"(repro.faults.build_degraded_wrht_schedule)",
                    backend=BACKEND_NAME,
                )
        routes = self._route_step(step)
        if validate and self._phy is not None:
            for route in routes:
                validate_route_phy(route, self._phy)
        route_blocked = None
        if self._port_faults_active:
            faults = self.config.faults
            route_blocked = [
                faults.endpoint_blocked(t.src, r.direction)
                | faults.endpoint_blocked(t.dst, r.direction)
                for t, r in zip(transfers, routes)
            ]
        rounds = self._solve_rounds(step, routes, route_blocked, extra_blocked)
        # Vectorized pricing: payloads and durations for the whole step in
        # one numpy pass, bit-identical element-wise to the scalar
        # CostModel.payload_time path (see payload_times).
        payloads = (
            np.array([t.n_elems for t in transfers], dtype=np.float64)
            * bytes_per_elem
        )
        durations = self._cost.payload_times(payloads)
        circuit_rounds: list[list[Circuit]] = []
        for assignment in rounds:
            circuits = [
                Circuit(
                    transfer=transfers[idx], route=routes[idx], fiber=fiber,
                    wavelength=lam, payload_bytes=float(payloads[idx]),
                    duration=float(durations[idx]),
                )
                for idx, (fiber, lam) in assignment.items()
            ]
            if validate:
                validate_no_conflicts(circuits)
                validate_node_constraints(
                    [(c.transfer, c.route, c.fiber, c.wavelength) for c in circuits],
                    mrrs_per_interface=self.config.n_wavelengths,
                )
            circuit_rounds.append(circuits)
        return circuit_rounds

    def _rwa_context(
        self,
        route_blocked: list[frozenset[int]] | None,
        extra_blocked: frozenset[int] | None = None,
    ) -> RwaContext:
        """This network's channel-space constraints for one routed step."""
        blocked = self.config.dead_wavelengths
        if extra_blocked:
            blocked = blocked | extra_blocked
        return RwaContext(
            n_segments=self.config.n_nodes,
            n_wavelengths=self.config.n_wavelengths,
            fibers_per_direction=self.config.fibers_per_direction,
            blocked=blocked,
            route_blocked=tuple(route_blocked) if route_blocked else None,
            preoccupied=self._quarantine,
        )

    def _solve_rounds(
        self,
        step: CommStep,
        routes: list,
        route_blocked: list[frozenset[int]] | None,
        extra_blocked: frozenset[int] | None = None,
    ) -> list[dict[int, tuple[int, int]]]:
        """RWA for one routed step: incremental repair when chained to a
        base network that has a cached solution for this pattern, full
        ``plan_rounds`` otherwise. Captures the solution for downstream
        repair when ``keep_solutions`` is set. Partitioned steps
        (``extra_blocked``) always solve from scratch and are never
        captured — their colorings live in a different channel space than
        the repairable full-budget ones."""
        if extra_blocked:
            if len(extra_blocked | self.config.dead_wavelengths) >= (
                self.config.n_wavelengths
            ):
                raise BackendError(
                    "wavelength partition leaves no usable wavelengths",
                    backend=BACKEND_NAME,
                )
            return plan_rounds(
                routes,
                n_segments=self.config.n_nodes,
                n_wavelengths=self.config.n_wavelengths,
                fibers_per_direction=self.config.fibers_per_direction,
                strategy=self.strategy,
                rng=self.rng,
                blocked=self.config.dead_wavelengths | extra_blocked,
                route_blocked=route_blocked,
                preoccupied=self._quarantine,
                metrics=self.metrics,
            )
        ctx = self._rwa_context(route_blocked)
        rounds = None
        if self._repair_base is not None:
            base_solution = self._repair_base._solutions.get(step.transfers)
            if base_solution is not None and len(base_solution.routes) == len(routes):
                edited = frozenset(
                    i
                    for i, (fresh, old) in enumerate(zip(routes, base_solution.routes))
                    if fresh != old
                )
                rounds = repair_rounds(
                    base_solution,
                    routes,
                    ctx,
                    edited=edited,
                    strategy=self.strategy,
                    rng=self.rng,
                    paranoid=self.paranoid_repair,
                    metrics=self.metrics,
                )
            elif self.metrics.enabled:
                self.metrics.inc("rwa.repair_miss")
        if rounds is None:
            rounds = plan_rounds(
                routes,
                n_segments=self.config.n_nodes,
                n_wavelengths=self.config.n_wavelengths,
                fibers_per_direction=self.config.fibers_per_direction,
                strategy=self.strategy,
                rng=self.rng,
                blocked=self.config.dead_wavelengths,
                route_blocked=route_blocked,
                preoccupied=self._quarantine,
                metrics=self.metrics,
            )
        if self.keep_solutions:
            self._solutions[step.transfers] = capture_solution(routes, rounds, ctx)
        return rounds

    def repair_network(
        self, faults, *, paranoid: bool = False
    ) -> "OpticalRingNetwork":
        """A degraded executor that repairs this network's cached solutions.

        The returned network shares this one's plan cache and metrics; its
        plan-cache keys are salted by the *fault diff* against this
        network's config (see ``delta_salted_key``), and every pattern this
        network has a kept solution for is incrementally repaired instead
        of re-solved. Patterns never seen here fall back to full RWA
        (counted under ``rwa.repair_miss``).

        Args:
            faults: The new (full) fault set for the degraded config.
            paranoid: Cross-check every repair against a from-scratch
                recolor (the ``--paranoid-repair`` oracle).

        Raises:
            ValueError: When this network was built without
                ``keep_solutions`` or uses ``random_fit``.
        """
        if not self.keep_solutions:
            raise ValueError(
                "construct the base network with keep_solutions=True to "
                "enable incremental repair"
            )
        return OpticalRingNetwork(
            replace(self.config, faults=faults),
            strategy=self.strategy,
            tracer=self.tracer,
            validate=self.validate,
            plan_cache=self.plan_cache,
            metrics=self.metrics,
            keep_solutions=True,
            repair_from=self,
            paranoid_repair=paranoid,
        )

    def repair_plan(
        self,
        schedule: Schedule,
        faults,
        *,
        bytes_per_elem: float = 4.0,
        paranoid: bool = False,
    ) -> tuple[LoweredPlan, "OpticalRingNetwork"]:
        """Lower ``schedule`` under ``faults`` by repairing cached solutions.

        Call after :meth:`lower` has populated this network's solution
        store (``keep_solutions=True``): each pattern is spliced through
        :func:`repro.optical.repair.repair_rounds` rather than re-solved,
        and the repaired summaries land in the plan cache under their
        delta-salted keys.

        Returns:
            ``(plan, degraded_network)`` — the degraded network is needed
            to execute the plan and to build verification context (its
            derived circuits match the repaired rounds).
        """
        network = self.repair_network(faults, paranoid=paranoid)
        return network.lower(schedule, bytes_per_elem), network

    def _price_pattern(
        self,
        step: CommStep,
        pattern_key: tuple,
        bytes_per_elem: float,
        use_cache: bool,
        counters: PlanCacheCounters,
        extra_blocked: frozenset[int] | None = None,
    ) -> tuple[CachedRound, ...]:
        """Priced round summary for one pattern, via the cross-run cache.

        ``pattern_key`` already encodes any partition parity, so a
        partitioned summary can never alias a full-budget one.
        """
        if use_cache:
            key = (pattern_key, self._plan_key_base, bytes_per_elem)
            cached = self.plan_cache.get(key)
            if cached is not None:
                counters.hits += 1
                return cached
            counters.misses += 1
        with self.metrics.span("optical.price_pattern"):
            circuit_rounds = self.plan_step_rounds(
                step, bytes_per_elem, extra_blocked=extra_blocked
            )
        capture = self._capture_claims
        summary = tuple(
            CachedRound(
                n_circuits=len(circuits),
                max_payload_s=max(c.duration for c in circuits),
                peak_wavelength=max(c.wavelength for c in circuits) + 1,
                payload_bytes=sum(c.payload_bytes for c in circuits),
                claims=round_claims(circuits) if capture else (),
            )
            for circuits in circuit_rounds
        )
        if use_cache:
            counters.evictions += self.plan_cache.put(key, summary)
        return summary

    def _timing_from_rounds(
        self,
        entry: LoweredStep,
        rounds: tuple[CachedRound, ...],
        clock: float,
        emit_rounds: bool,
    ) -> StepTiming:
        """Fold per-round summaries into a StepTiming, optionally emitting
        the round trace events. Shared by fresh pricing and cache replay so
        both accumulate the identical floats in the identical order — cache
        hits are bit-exact."""
        duration = 0.0
        peak = 0
        step_bytes = 0.0
        for round_no, rnd in enumerate(rounds, start=1):
            peak = max(peak, rnd.peak_wavelength)
            step_bytes += rnd.payload_bytes
            # Exposed MRR tuning (repro.optical.reconfig) precedes the
            # round's reconfiguration window. getattr: summaries unpickled
            # from a pre-reconfig on-disk store lack the field. The branch
            # (not `+= 0.0`) keeps the tuning-free fold bit-identical.
            tune = getattr(rnd, "tune_s", 0.0)
            if tune:
                duration += tune
            duration += self.config.mrr_reconfig_delay + rnd.max_payload_s
            if emit_rounds:
                self.tracer.emit(
                    clock + duration, "optical.round",
                    stage=entry.stage, round=round_no,
                    n_circuits=rnd.n_circuits, max_payload_s=rnd.max_payload_s,
                    peak_wavelength=rnd.peak_wavelength,
                )
        return StepTiming(
            stage=entry.stage, count=entry.count, n_transfers=entry.n_transfers,
            rounds=len(rounds), duration=duration,
            peak_wavelength=peak, bytes_per_step=step_bytes,
        )
