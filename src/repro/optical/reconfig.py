"""Reconfiguration-latency model and tuning/transmission overlap planning.

The paper (and this repo's seed executor) treats MRR circuit setup as free:
only the fixed 25 µs per-round ``mrr_reconfig_delay`` is priced, and a
wavelength retune costs nothing. SWOT-style measurements show the opposite
at small payloads — thermal MRR tuning dominates. This module adds the
missing physics and the planning pass that claws most of it back:

1. :class:`ReconfigModel` — per-MRR tuning time ``t_tune`` plus an optional
   per-wavelength-distance term, built on
   :func:`repro.optical.phy.mrr_tuning_time`. Disabled (all-zero) by
   default so every existing timing stays bit-identical.

2. :func:`apply_reconfig` — a pass over a lowered plan that classifies each
   round's MRR/wavelength claims against the *previous* round:

   - **held**: the same endpoint already drives the same channel — no
     retune (this is what makes a repeated step pattern free, and what the
     hold/one-shot plan exploits);
   - **blocked**: the channel is active elsewhere in the previous round —
     wavelength exclusivity forbids tuning onto it until that round's
     circuits tear down, so its tuning is fully exposed;
   - **free**: a claim disjoint from everything the previous round drives —
     its tuning can overlap the previous round's transmission, exposing
     only ``max(0, tune − prev_payload)``.

   Per round the exposed tuning is ``max(blocked, max(0, free − prev_
   payload))`` with overlap (``max(blocked, free)`` without), charged
   before the round's MRR reconfiguration delay. The pass annotates the
   plan's :class:`~repro.backend.plancache.CachedRound` summaries in place
   (``tune_s``), splitting a profile entry when its first occurrence faces
   a different boundary than its self-repeats.

3. :func:`choose_plan` — the reconfigure-vs-hold estimator: lower the
   schedule normally (wavelengths reused every step, tuning paid) and with
   an alternating wavelength partition (adjacent steps channel-disjoint, so
   all tuning overlaps, at the cost of half the wavelength budget per
   step), then pick whichever static total is smaller. The decision is
   recorded in plan meta and, when enabled, ``repro.obs`` metrics.

The static annotation, the analytic recurrence
(:func:`repro.core.timing.reconfig_exposed_time`) and the live DES
coordinator (:mod:`repro.optical.livesim`) price the same model; PLAN008
(:mod:`repro.check.plan_rules`) re-derives the classification from the
plan's recorded claims and rejects any plan that transmits on a resource
still being tuned.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.backend.base import LoweredPlan, LoweredStep
from repro.backend.errors import BackendError
from repro.backend.plancache import CachedRound
from repro.optical.phy import mrr_tuning_time

#: Claim tuple: (node, direction value, fiber, wavelength) — one tunable
#: MRR endpoint driving one WDM channel.
Claim = tuple[int, str, int, int]


@dataclass(frozen=True)
class ReconfigModel:
    """MRR wavelength-tuning cost model.

    Attributes:
        t_tune: Fixed thermal settling time per MRR retune (seconds).
        tune_per_channel: Extra seconds per unit of spectral distance from
            the parked resonance (wavelength index 0).
    """

    t_tune: float = 0.0
    tune_per_channel: float = 0.0

    def __post_init__(self) -> None:
        if self.t_tune < 0 or self.tune_per_channel < 0:
            raise ValueError("tuning times must be >= 0")

    @property
    def enabled(self) -> bool:
        """Whether any tuning cost is nonzero."""
        return self.t_tune > 0 or self.tune_per_channel > 0

    def claim_tune_s(self, wavelength: int) -> float:
        """Tuning seconds for one MRR claim on ``wavelength``."""
        return mrr_tuning_time(wavelength, self.t_tune, self.tune_per_channel)


def round_claims(circuits) -> tuple[Claim, ...]:
    """The MRR endpoint claims of one round's circuits, sorted.

    Each circuit tunes two MRRs — the add filter at its source and the drop
    filter at its destination — onto its channel. The claim carries the
    node so that *holding* is per-endpoint: the same node re-driving the
    same channel next round needs no retune, while a different node taking
    over the channel does.
    """
    claims = set()
    for c in circuits:
        direction = c.route.direction.value
        claims.add((c.transfer.src, direction, c.fiber, c.wavelength))
        claims.add((c.transfer.dst, direction, c.fiber, c.wavelength))
    return tuple(sorted(claims))


def split_tuning(
    model: ReconfigModel,
    prev_claims: frozenset[Claim] | tuple[Claim, ...],
    claims: tuple[Claim, ...],
) -> tuple[float, float]:
    """Classify ``claims`` against the previous round; return the tuning
    exposure classes ``(blocked_s, free_s)``.

    Held claims (present verbatim in ``prev_claims``) cost nothing.
    ``blocked_s`` is the slowest retune among claims whose channel is
    active *elsewhere* in the previous round (cannot start until teardown);
    ``free_s`` the slowest among claims on channels the previous round
    never drives (may race its transmission).
    """
    prev = frozenset(prev_claims)
    prev_channels = frozenset((d, f, lam) for (_, d, f, lam) in sorted(prev))
    blocked = 0.0
    free = 0.0
    for claim in claims:
        if claim in prev:
            continue  # held — the MRR is already locked on this channel
        tune = model.claim_tune_s(claim[3])
        if (claim[1], claim[2], claim[3]) in prev_channels:
            blocked = max(blocked, tune)
        else:
            free = max(free, tune)
    return blocked, free


def exposed_tuning(
    model: ReconfigModel,
    prev_claims,
    claims: tuple[Claim, ...],
    prev_payload_s: float,
    overlap: bool,
) -> float:
    """Exposed tuning seconds charged before a round.

    With overlap, free tuning races the previous round's transmission
    window (``prev_payload_s``); blocked tuning is always serial.
    """
    blocked, free = split_tuning(model, prev_claims, claims)
    if overlap:
        return max(blocked, max(0.0, free - prev_payload_s))
    return max(blocked, free)


def _annotate(
    rounds: tuple[CachedRound, ...],
    model: ReconfigModel,
    prev_claims,
    prev_payload_s: float,
    overlap: bool,
) -> tuple[tuple[CachedRound, ...], float, float]:
    """Annotate one step's rounds with exposed tuning, starting from the
    given boundary state. Returns ``(rounds, exposed_total, raw_total)``
    where raw is the no-overlap exposure of the same boundary chain."""
    out = []
    exposed_total = 0.0
    raw_total = 0.0
    for rnd in rounds:
        blocked, free = split_tuning(model, prev_claims, rnd.claims)
        raw = max(blocked, free)
        exposed = max(blocked, max(0.0, free - prev_payload_s)) if overlap else raw
        out.append(replace(rnd, tune_s=exposed))
        exposed_total += exposed
        raw_total += raw
        prev_claims = rnd.claims
        prev_payload_s = rnd.max_payload_s
    return tuple(out), exposed_total, raw_total


def apply_reconfig(
    plan: LoweredPlan, model: ReconfigModel, *, overlap: bool = True
) -> LoweredPlan:
    """Annotate ``plan`` with exposed MRR tuning times.

    Requires the plan's :class:`CachedRound` payloads to carry claims
    (lower through a network whose config enables the model, or with
    ``capture_claims=True``). A disabled model returns the plan unchanged.

    Each profile entry is priced twice: its *first* occurrence against the
    previous entry's final round, and its *self-repeat* boundary (round 0
    against the entry's own last round). When the two differ and the entry
    repeats, it is split into a count-1 head and a count−1 tail so the fold
    charges each boundary exactly once. Entries lose their ``replay`` mark
    (payloads become position-dependent) and the original profile length is
    recorded in ``meta["reconfig"]["n_profile_entries"]`` for PLAN000.
    """
    if not model.enabled:
        return plan
    for entry in plan.entries:
        for rnd in entry.payload:
            if rnd.n_circuits and not rnd.claims:
                raise ValueError(
                    "plan payloads carry no MRR claims; lower through a "
                    "network with the reconfiguration model enabled "
                    "(or capture_claims=True)"
                )
    entries: list[LoweredStep] = []
    prev_claims: tuple = ()
    prev_payload = 0.0
    exposed_total = 0.0
    raw_total = 0.0
    for entry in plan.entries:
        rounds = tuple(entry.payload)
        first, first_exposed, first_raw = _annotate(
            rounds, model, prev_claims, prev_payload, overlap
        )
        exposed_total += first_exposed
        raw_total += first_raw
        if entry.count > 1:
            last = rounds[-1]
            rep, rep_exposed, rep_raw = _annotate(
                rounds, model, last.claims, last.max_payload_s, overlap
            )
            exposed_total += rep_exposed * (entry.count - 1)
            raw_total += rep_raw * (entry.count - 1)
            if rep == first:
                entries.append(
                    replace(entry, payload=first, replay=False)
                )
            else:
                entries.append(
                    replace(entry, count=1, payload=first, replay=False)
                )
                entries.append(
                    replace(entry, count=entry.count - 1, payload=rep, replay=False)
                )
        else:
            entries.append(replace(entry, payload=first, replay=False))
        prev_claims = rounds[-1].claims
        prev_payload = rounds[-1].max_payload_s
    meta = dict(plan.meta)
    meta["reconfig"] = {
        "t_tune": model.t_tune,
        "tune_per_channel": model.tune_per_channel,
        "overlap": overlap,
        "n_profile_entries": len(plan.entries),
        "exposed_tune_s": exposed_total,
        "raw_tune_s": raw_total,
    }
    return replace(plan, entries=tuple(entries), meta=meta)


def plan_total_time(plan: LoweredPlan, mrr_reconfig_delay: float) -> float:
    """Static total of an optical plan — the exact fold the executor runs.

    Accumulates in the same order as
    :meth:`~repro.optical.network.OpticalRingNetwork.execute_plan`, so the
    estimate is bit-equal to executing the plan.
    """
    total = 0.0
    for entry in plan.entries:
        duration = 0.0
        for rnd in entry.payload:
            if rnd.tune_s:
                duration += rnd.tune_s
            duration += mrr_reconfig_delay + rnd.max_payload_s
        total += duration * entry.count
    return total


def choose_plan(
    network, schedule, bytes_per_elem: float = 4.0
) -> LoweredPlan:
    """Lower ``schedule`` both ways and keep the faster plan.

    The *reconfiguring* plan reuses the full wavelength budget every step
    and pays (partially overlapped) tuning at each boundary; the *hold*
    plan lowers with an alternating wavelength partition
    (``partition=True``) so adjacent steps claim disjoint channels and all
    tuning overlaps — at the price of half the budget per step, which can
    spill rounds. Totals are compared with the static fold
    (:func:`plan_total_time`, bit-equal to execution) and the decision is
    recorded in ``meta["reconfig"]["decision"]`` and, when the network has
    metrics enabled, under ``optical.reconfig.decision.*``.

    With the model disabled this is exactly ``network.lower``.
    """
    model = network.config.reconfig
    plan = network.lower(schedule, bytes_per_elem)
    if not model.enabled:
        return plan
    delay = network.config.mrr_reconfig_delay
    reconfigure_s = plan_total_time(plan, delay)
    hold_plan = None
    hold_s = None
    try:
        hold_plan = network.lower(schedule, bytes_per_elem, partition=True)
    except BackendError:
        pass  # partition infeasible (e.g. w=1) — reconfigure is the plan
    if hold_plan is not None:
        hold_s = plan_total_time(hold_plan, delay)
    if hold_s is not None and hold_s < reconfigure_s:
        chosen, label = hold_plan, "hold"
    else:
        chosen, label = plan, "reconfigure" if hold_s is not None else "hold-infeasible"
    meta = dict(chosen.meta)
    info = dict(meta.get("reconfig", {}))
    info["decision"] = {
        "chosen": label,
        "reconfigure_s": reconfigure_s,
        "hold_s": hold_s,
    }
    meta["reconfig"] = info
    if network.metrics.enabled:
        network.metrics.inc(f"optical.reconfig.decision.{label}")
        network.metrics.gauge("optical.reconfig.reconfigure_s", reconfigure_s)
        if hold_s is not None:
            network.metrics.gauge("optical.reconfig.hold_s", hold_s)
    return replace(chosen, meta=meta)
