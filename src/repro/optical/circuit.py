"""Established optical circuits and exclusivity validation.

The executor turns each (transfer, route, channel) triple of a round into a
:class:`Circuit` record. Circuits are the unit the test suite audits: within
one round, no two circuits on the same (direction, fiber, wavelength) may
share a segment — the defining property of circuit-switched WDM.

Conflict detection is the segment×direction×wavelength interval analysis of
:mod:`repro.check.intervals` (each crossed segment is a unit interval on
the circuit's channel resource); :func:`validate_no_conflicts` is the thin
raising wrapper the executors call, and the plan verifier consumes the same
:func:`circuit_conflicts` as findings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.check.intervals import Claim, Conflict, find_conflicts
from repro.collectives.base import Transfer
from repro.optical.topology import Route


class CircuitConflictError(ValueError):
    """Two circuits of one round collide on a WDM channel segment."""


@dataclass(frozen=True)
class Circuit:
    """One established lightpath within a round.

    Attributes:
        transfer: The logical transfer carried.
        route: Direction and crossed segments.
        fiber: Fiber index within the direction's pool.
        wavelength: Wavelength index on that fiber.
        payload_bytes: Bytes carried (elements × bytes/element).
        duration: Seconds of serialization + O/E/O for the payload.
    """

    transfer: Transfer
    route: Route
    fiber: int
    wavelength: int
    payload_bytes: float
    duration: float

    def __post_init__(self) -> None:
        if self.fiber < 0 or self.wavelength < 0:
            raise ValueError("fiber and wavelength must be >= 0")
        if self.payload_bytes < 0 or self.duration < 0:
            raise ValueError("payload and duration must be >= 0")

    @property
    def channel(self) -> tuple[str, int, int]:
        """The WDM channel key: (direction, fiber, wavelength)."""
        return (self.route.direction.value, self.fiber, self.wavelength)


def circuit_claims(circuits: list[Circuit]) -> list[Claim]:
    """One exclusive unit-interval claim per crossed segment per circuit.

    The claim resource is the WDM channel ``(direction, fiber,
    wavelength)``; segment ``s`` becomes the unit interval ``[s, s+1)``.
    Circuits are never combinable — any overlap is a conflict.
    """
    return [
        Claim(
            resource=circuit.channel,
            lo=segment,
            hi=segment + 1,
            owner=circuit,
            combinable=False,
        )
        for circuit in circuits
        for segment in circuit.route.segments
    ]


def circuit_conflicts(
    circuits: list[Circuit], first_only: bool = False
) -> list[Conflict]:
    """Segment-exclusivity conflicts among one round's circuits.

    The shared implementation behind :func:`validate_no_conflicts` (raises)
    and the plan verifier's wavelength-conflict rule (reports findings).
    """
    return find_conflicts(circuit_claims(circuits), first_only=first_only)


def describe_conflict(conflict: Conflict) -> str:
    """Human-readable rendering of one circuit conflict."""
    first: Circuit = conflict.first.owner
    second: Circuit = conflict.second.owner
    return (
        f"circuits {first.transfer.src}->{first.transfer.dst} and "
        f"{second.transfer.src}->{second.transfer.dst} share "
        f"segment {conflict.first.lo} on channel {second.channel}"
    )


def validate_no_conflicts(circuits: list[Circuit]) -> None:
    """Assert segment-exclusivity of one round's circuits.

    Thin wrapper over :func:`circuit_conflicts` kept as the executors'
    runtime entry point.

    Raises:
        CircuitConflictError: naming the first offending pair.
    """
    conflicts = circuit_conflicts(circuits, first_only=True)
    if conflicts:
        raise CircuitConflictError(describe_conflict(conflicts[0]))
