"""Established optical circuits and exclusivity validation.

The executor turns each (transfer, route, channel) triple of a round into a
:class:`Circuit` record. Circuits are the unit the test suite audits: within
one round, no two circuits on the same (direction, fiber, wavelength) may
share a segment — the defining property of circuit-switched WDM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.base import Transfer
from repro.optical.topology import Route


class CircuitConflictError(ValueError):
    """Two circuits of one round collide on a WDM channel segment."""


@dataclass(frozen=True)
class Circuit:
    """One established lightpath within a round.

    Attributes:
        transfer: The logical transfer carried.
        route: Direction and crossed segments.
        fiber: Fiber index within the direction's pool.
        wavelength: Wavelength index on that fiber.
        payload_bytes: Bytes carried (elements × bytes/element).
        duration: Seconds of serialization + O/E/O for the payload.
    """

    transfer: Transfer
    route: Route
    fiber: int
    wavelength: int
    payload_bytes: float
    duration: float

    def __post_init__(self) -> None:
        if self.fiber < 0 or self.wavelength < 0:
            raise ValueError("fiber and wavelength must be >= 0")
        if self.payload_bytes < 0 or self.duration < 0:
            raise ValueError("payload and duration must be >= 0")

    @property
    def channel(self) -> tuple[str, int, int]:
        """The WDM channel key: (direction, fiber, wavelength)."""
        return (self.route.direction.value, self.fiber, self.wavelength)


def validate_no_conflicts(circuits: list[Circuit]) -> None:
    """Assert segment-exclusivity of one round's circuits.

    Raises:
        CircuitConflictError: naming the first offending pair.
    """
    seen: dict[tuple[str, int, int, int], Circuit] = {}
    for circuit in circuits:
        direction, fiber, wavelength = circuit.channel
        for segment in circuit.route.segments:
            key = (direction, fiber, wavelength, segment)
            other = seen.get(key)
            if other is not None:
                raise CircuitConflictError(
                    f"circuits {other.transfer.src}->{other.transfer.dst} and "
                    f"{circuit.transfer.src}->{circuit.transfer.dst} share "
                    f"segment {segment} on channel {circuit.channel}"
                )
            seen[key] = circuit
