"""Routing and Wavelength Assignment (RWA) for one communication round.

Given the concurrent transfers of a step (already routed), assign each a
(fiber, wavelength) channel in its direction such that no two transfers
sharing a fiber+wavelength cross a common segment. Two strategies from the
paper's citations are provided:

- **First-Fit** [21] — transfers sorted longest-route-first, each takes the
  lowest-indexed free channel (deterministic, good packing).
- **Random-Fit** [31] — each transfer takes a uniformly random free channel
  (needs a :class:`~repro.sim.rng.SeededRng`).

Transfers that cannot be assigned in this round are reported back; the
executor schedules them into follow-up rounds (each paying another MRR
reconfiguration), which is how wavelength scarcity turns into time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.optical.topology import Direction, Route
from repro.sim.rng import SeededRng
from repro.util.validation import check_positive_int

STRATEGIES = ("first_fit", "random_fit")


def dsatur_assign(
    routes: list[Route],
    n_segments: int,
    n_wavelengths: int,
    fibers_per_direction: int = 1,
    blocked: frozenset[int] = frozenset(),
) -> AssignmentResult | None:
    """Optimal-leaning assignment via DSATUR graph coloring.

    Greedy channel packing can exceed the minimum wavelength count on
    circular-arc conflict graphs (the final WRHT all-to-all is exactly such
    an instance, where the ``⌈k²/8⌉`` bound of [13] is tight). DSATUR —
    color the vertex with the most distinctly-colored neighbours first —
    empirically achieves the max-load optimum on these structured
    instances. Used by the executor as a fallback when First-Fit spills.

    Returns:
        A complete assignment, or ``None`` if even DSATUR needs more than
        ``fibers × wavelengths`` channels (the caller then falls back to
        multi-round execution).
    """
    n = len(routes)
    if n == 0:
        return AssignmentResult()
    seg_sets = [frozenset(r.segments) for r in routes]
    adjacency: list[set[int]] = [set() for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if routes[i].direction is routes[j].direction and seg_sets[i] & seg_sets[j]:
                adjacency[i].add(j)
                adjacency[j].add(i)
    allowed = [
        (f, lam)
        for f in range(fibers_per_direction)
        for lam in range(n_wavelengths)
        if lam not in blocked
    ]
    capacity = len(allowed)
    colors: dict[int, int] = {}
    neighbour_colors: list[set[int]] = [set() for _ in range(n)]
    uncolored = set(range(n))
    while uncolored:
        # Highest saturation, ties by degree then index (deterministic).
        pick = max(
            uncolored,
            key=lambda v: (len(neighbour_colors[v]), len(adjacency[v]), -v),
        )
        color = 0
        taken = neighbour_colors[pick]
        while color in taken:
            color += 1
        if color >= capacity:
            return None
        colors[pick] = color
        uncolored.discard(pick)
        for peer in adjacency[pick]:
            neighbour_colors[peer].add(color)
    result = AssignmentResult()
    for idx, color in colors.items():
        fiber, lam = allowed[color]
        result.assigned[idx] = (fiber, lam)
        result.peak_wavelength = max(result.peak_wavelength, lam + 1)
    return result


@dataclass
class AssignmentResult:
    """Outcome of one RWA round.

    Attributes:
        assigned: Maps input index -> (fiber, wavelength).
        unassigned: Input indices that did not fit this round.
        peak_wavelength: Highest wavelength index used, plus one (i.e. the
            number of distinct wavelength indices touched); 0 if nothing was
            assigned.
    """

    assigned: dict[int, tuple[int, int]] = field(default_factory=dict)
    unassigned: list[int] = field(default_factory=list)
    peak_wavelength: int = 0


def plan_rounds(
    routes: list[Route],
    n_segments: int,
    n_wavelengths: int,
    fibers_per_direction: int = 1,
    strategy: str = "first_fit",
    rng: SeededRng | None = None,
    dsatur_fallback: bool = True,
    blocked: frozenset[int] = frozenset(),
) -> list[dict[int, tuple[int, int]]]:
    """Split one step's transfers into conflict-free rounds.

    Each returned dict maps the *original* route index to its (fiber,
    wavelength). The first round tries the configured strategy and, when it
    spills and ``dsatur_fallback`` is set, retries with
    :func:`dsatur_assign` before paying an extra reconfiguration round.
    Used by both the step-timing executor and the live event-driven
    simulation so their round structure is identical by construction.
    """
    remaining = list(range(len(routes)))
    rounds: list[dict[int, tuple[int, int]]] = []
    first = True
    while remaining:
        subset = [routes[i] for i in remaining]
        assignment = assign_wavelengths(
            subset, n_segments, n_wavelengths, fibers_per_direction,
            strategy=strategy, rng=rng, blocked=blocked,
        )
        if first and assignment.unassigned and dsatur_fallback:
            structured = dsatur_assign(
                subset, n_segments, n_wavelengths, fibers_per_direction,
                blocked=blocked,
            )
            if structured is not None:
                assignment = structured
        first = False
        if not assignment.assigned:
            raise RuntimeError(
                "RWA failed to place any transfer on an empty round; "
                "file a bug"
            )
        rounds.append(
            {remaining[local]: chan for local, chan in assignment.assigned.items()}
        )
        remaining = [remaining[j] for j in assignment.unassigned]
    return rounds


class _ChannelOccupancy:
    """Per-direction segment occupancy of every (fiber, wavelength)."""

    def __init__(self, n_segments: int, n_fibers: int, n_wavelengths: int) -> None:
        self.n_segments = n_segments
        self.n_fibers = n_fibers
        self.n_wavelengths = n_wavelengths
        self._busy = np.zeros((n_fibers, n_wavelengths, n_segments), dtype=bool)

    def fits(self, fiber: int, wavelength: int, segments: np.ndarray) -> bool:
        return not self._busy[fiber, wavelength, segments].any()

    def take(self, fiber: int, wavelength: int, segments: np.ndarray) -> None:
        self._busy[fiber, wavelength, segments] = True


def assign_wavelengths(
    routes: list[Route],
    n_segments: int,
    n_wavelengths: int,
    fibers_per_direction: int = 1,
    strategy: str = "first_fit",
    rng: SeededRng | None = None,
    blocked: frozenset[int] = frozenset(),
) -> AssignmentResult:
    """Assign channels to routed transfers for one round.

    Args:
        routes: One route per transfer (list index identifies the transfer).
        n_segments: Ring size (segments per direction).
        n_wavelengths: Wavelengths per fiber.
        fibers_per_direction: Parallel fibers per direction.
        strategy: ``"first_fit"`` or ``"random_fit"``.
        rng: Required for ``"random_fit"``.

    Returns:
        An :class:`AssignmentResult`; ``assigned ∪ unassigned`` covers all
        inputs exactly once.
    """
    check_positive_int("n_segments", n_segments)
    check_positive_int("n_wavelengths", n_wavelengths)
    check_positive_int("fibers_per_direction", fibers_per_direction)
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    if strategy == "random_fit" and rng is None:
        raise ValueError("random_fit requires an rng")

    occupancy = {
        direction: _ChannelOccupancy(n_segments, fibers_per_direction, n_wavelengths)
        for direction in Direction
    }
    result = AssignmentResult()
    # Longest routes are hardest to place; assign them first. Ties keep the
    # original order so the outcome is deterministic.
    order = sorted(range(len(routes)), key=lambda i: (-routes[i].hops, i))
    for idx in order:
        route = routes[idx]
        segments = np.asarray(route.segments, dtype=np.intp)
        occ = occupancy[route.direction]
        channels = [
            (f, lam)
            for f in range(fibers_per_direction)
            for lam in range(n_wavelengths)
            if lam not in blocked
        ]
        if strategy == "random_fit":
            rng.shuffle(channels)
        placed = False
        for fiber, lam in channels:
            if occ.fits(fiber, lam, segments):
                occ.take(fiber, lam, segments)
                result.assigned[idx] = (fiber, lam)
                result.peak_wavelength = max(result.peak_wavelength, lam + 1)
                placed = True
                break
        if not placed:
            result.unassigned.append(idx)
    return result
