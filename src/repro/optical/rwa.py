"""Routing and Wavelength Assignment (RWA) for one communication round.

Given the concurrent transfers of a step (already routed), assign each a
(fiber, wavelength) channel in its direction such that no two transfers
sharing a fiber+wavelength cross a common segment. Two strategies from the
paper's citations are provided:

- **First-Fit** [21] — transfers sorted longest-route-first, each takes the
  lowest-indexed free channel (deterministic, good packing).
- **Random-Fit** [31] — each transfer takes a uniformly random free channel
  (needs a :class:`~repro.sim.rng.SeededRng`).

Transfers that cannot be assigned in this round are reported back; the
executor schedules them into follow-up rounds (each paying another MRR
reconfiguration), which is how wavelength scarcity turns into time.

Representation
--------------

A route's segment set is encoded as an arbitrary-precision integer bitmask
(bit ``s`` set iff segment ``s`` is crossed), so a channel-occupancy probe
is a single ``busy & mask == 0`` and taking a channel is ``busy |= mask``.
This replaces the seed implementation's per-probe numpy fancy indexing and
is what makes paper-scale sweeps interactive; the seed implementation is
preserved in :mod:`repro.optical._rwa_reference` and the parity property
tests assert both produce identical assignments, round structure and
Random-Fit RNG consumption.

Incremental repair
------------------

A fault delta (dead wavelength, port fault, quarantine growth) rarely
invalidates more than a handful of a step's assignments. Instead of
re-solving from scratch, :func:`repair_rounds` (implemented in
:mod:`repro.optical.repair`, re-exported here) recolors only the
conflict-affected subgraph with the untouched assignments pinned — see the
repair module for the cascade/fallback semantics and the paranoid
cross-check oracle.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.backend.errors import BackendError
from repro.obs.metrics import COUNT_EDGES, NULL_METRICS, MetricsRegistry
from repro.optical.topology import Direction, Route
from repro.sim.rng import SeededRng
from repro.util.validation import check_positive_int

STRATEGIES = ("first_fit", "random_fit")


class RwaInfeasibleError(BackendError):
    """No transfer of a round could be placed on an *empty* channel space.

    Raised by :func:`plan_rounds` when even a fresh round places nothing —
    which can only happen when the channel capacity is zero for some
    direction in use (e.g. every wavelength blocked). Carries the offending
    context so sweeps can report the combination instead of crashing. As a
    :class:`~repro.backend.errors.BackendError` it also carries the backend
    name and failing step index (filled in by the lowering loop).

    Attributes:
        routes: The routes that could not be placed.
        n_wavelengths: Wavelengths per fiber of the failing budget.
        fibers_per_direction: Fibers per direction of the failing budget.
        blocked: Blocked wavelength indices.
    """

    def __init__(
        self,
        routes: list[Route],
        n_wavelengths: int,
        fibers_per_direction: int,
        blocked: frozenset[int],
    ) -> None:
        self.routes = list(routes)
        self.n_wavelengths = n_wavelengths
        self.fibers_per_direction = fibers_per_direction
        self.blocked = frozenset(blocked)
        usable = n_wavelengths - len(self.blocked & set(range(n_wavelengths)))
        super().__init__(
            f"RWA cannot place any of {len(self.routes)} transfer(s) on an "
            f"empty round: budget is {fibers_per_direction} fiber(s) x "
            f"{n_wavelengths} wavelength(s) with {len(self.blocked)} blocked "
            f"({usable} usable per fiber)"
        )

    def __reduce__(self):
        """Pickle via the 4-argument constructor (sweep workers)."""
        return (
            self.__class__,
            (
                self.routes,
                self.n_wavelengths,
                self.fibers_per_direction,
                self.blocked,
            ),
            {"backend": self.backend, "step_index": self.step_index},
        )


def _route_masks(routes: list[Route]) -> list[int]:
    """Segment-set bitmask per route (bit ``s`` set iff segment crossed)."""
    masks = []
    for route in routes:
        mask = 0
        for seg in route.segments:
            mask |= 1 << seg
        masks.append(mask)
    return masks


def _allowed_channels(
    n_wavelengths: int, fibers_per_direction: int, blocked: frozenset[int]
) -> list[tuple[int, int, int]]:
    """The probe order shared by every transfer: (slot, fiber, wavelength).

    ``slot`` is the flat occupancy index ``fiber * n_wavelengths + lam``.
    Hoisted out of the per-transfer loop — the seed rebuilt this list for
    every transfer.
    """
    return [
        (f * n_wavelengths + lam, f, lam)
        for f in range(fibers_per_direction)
        for lam in range(n_wavelengths)
        if lam not in blocked
    ]


def dsatur_assign(
    routes: list[Route],
    n_segments: int,
    n_wavelengths: int,
    fibers_per_direction: int = 1,
    blocked: frozenset[int] = frozenset(),
    masks: list[int] | None = None,
    route_blocked: Sequence[frozenset[int]] | None = None,
    preoccupied: Mapping[tuple[Direction, int], int] | None = None,
    metrics: MetricsRegistry = NULL_METRICS,
) -> AssignmentResult | None:
    """Optimal-leaning assignment via DSATUR graph coloring.

    Greedy channel packing can exceed the minimum wavelength count on
    circular-arc conflict graphs (the final WRHT all-to-all is exactly such
    an instance, where the ``⌈k²/8⌉`` bound of [13] is tight). DSATUR —
    color the vertex with the most distinctly-colored neighbours first —
    empirically achieves the max-load optimum on these structured
    instances. Used by the executor as a fallback when First-Fit spills.

    The conflict graph is built from the routes' segment bitmasks (packed
    into a byte matrix and AND-ed row-wise in numpy) and the
    highest-saturation vertex is tracked with a lazy max-heap; both steps
    reproduce the seed implementation's choices exactly (the tie order
    ``(saturation, degree, -index)`` is a total order).

    Args:
        masks: Precomputed :func:`_route_masks` output, to avoid recomputing
            when the caller (``plan_rounds``) already has them.
        route_blocked: Optional per-route wavelength bans (same length as
            ``routes``); fault injection uses these for dead MRR endpoint
            ports. Banned colors are pre-marked as ``seen`` without touching
            saturation, so the selection order is unchanged when no route
            has bans.
        preoccupied: Optional segment bitmask per (direction, wavelength)
            that counts as already busy (stuck-MRR quarantine spans).
        metrics: Observability registry; records the number of heap
            selections under ``rwa.dsatur_iterations`` (a deterministic
            count — the coloring itself never consults the registry).

    Returns:
        A complete assignment, or ``None`` if even DSATUR needs more than
        ``fibers × wavelengths`` channels (the caller then falls back to
        multi-round execution).
    """
    n = len(routes)
    if n == 0:
        return AssignmentResult()
    if masks is None:
        masks = _route_masks(routes)

    allowed = [
        (f, lam)
        for f in range(fibers_per_direction)
        for lam in range(n_wavelengths)
        if lam not in blocked
    ]
    capacity = len(allowed)
    if capacity == 0:
        return None

    # Conflict graph: same direction and overlapping segment masks. Each
    # direction group gets a boolean conflict matrix computed in one
    # float32 matmul over the unpacked mask bits (exact: dot products count
    # shared segments, ≤ the segment count, far below float32 precision).
    nbytes = max(1, (max(m.bit_length() for m in masks) + 7) // 8)
    groups: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    local_of = np.zeros(n, dtype=np.intp)
    group_of = np.zeros(n, dtype=np.intp)
    deg = np.zeros(n, dtype=np.int64)
    for direction in Direction:
        members = np.array(
            [i for i in range(n) if routes[i].direction is direction],
            dtype=np.intp,
        )
        if members.size == 0:
            continue
        packed = np.frombuffer(
            b"".join(masks[i].to_bytes(nbytes, "little") for i in members),
            dtype=np.uint8,
        ).reshape(members.size, nbytes)
        bits = np.unpackbits(packed, axis=1, bitorder="little").astype(np.float32)
        conflict = (bits @ bits.T) > 0
        np.fill_diagonal(conflict, False)
        group_of[members] = len(groups)
        local_of[members] = np.arange(members.size)
        deg[members] = conflict.sum(axis=1)
        groups.append((members, conflict, np.zeros(members.size, dtype=bool)))

    colors: dict[int, int] = {}
    # neighbour-color sets as one bool row per vertex; saturation is the
    # row's True count, tracked incrementally for the heap keys.
    seen = np.zeros((n, capacity), dtype=bool)
    # Fault bans are pre-marked as seen WITHOUT contributing to saturation:
    # a banned color can never be picked (free skips it) yet the selection
    # order stays bit-identical to the unfaulted run when no bans exist.
    if route_blocked is not None or preoccupied is not None:
        pre = preoccupied or {}
        for v in range(n):
            bans = route_blocked[v] if route_blocked is not None else frozenset()
            for c, (_f, lam) in enumerate(allowed):
                if lam in bans or pre.get((routes[v].direction, lam), 0) & masks[v]:
                    seen[v, c] = True
    sat = [0] * n
    # Lazy max-heap over (saturation, degree, -index) — the seed's exact
    # selection order (the key is a total order, so ties cannot differ).
    # Entries are pushed whenever a vertex's saturation grows and skipped
    # on pop when stale.
    heap = [(0, -int(deg[v]), v) for v in range(n)]
    heapq.heapify(heap)
    pops = 0
    while len(colors) < n:
        while True:
            neg_sat, _neg_deg, pick = heapq.heappop(heap)
            pops += 1
            if pick not in colors and -neg_sat == sat[pick]:
                break
        free = np.flatnonzero(~seen[pick])
        if free.size == 0:
            metrics.inc("rwa.dsatur_iterations", pops)
            return None
        color = int(free[0])
        colors[pick] = color
        members, conflict, done = groups[group_of[pick]]
        done[local_of[pick]] = True
        peers = members[conflict[local_of[pick]] & ~done]
        fresh = peers[~seen[peers, color]]
        seen[fresh, color] = True
        for peer in fresh:
            peer = int(peer)
            sat[peer] += 1
            heapq.heappush(heap, (-sat[peer], -int(deg[peer]), peer))
    metrics.inc("rwa.dsatur_iterations", pops)
    result = AssignmentResult()
    for idx, color in colors.items():
        fiber, lam = allowed[color]
        result.assigned[idx] = (fiber, lam)
        result.peak_wavelength = max(result.peak_wavelength, lam + 1)
    return result


@dataclass
class AssignmentResult:
    """Outcome of one RWA round.

    Attributes:
        assigned: Maps input index -> (fiber, wavelength).
        unassigned: Input indices that did not fit this round.
        peak_wavelength: Highest wavelength index used, plus one (i.e. the
            number of distinct wavelength indices touched); 0 if nothing was
            assigned.
    """

    assigned: dict[int, tuple[int, int]] = field(default_factory=dict)
    unassigned: list[int] = field(default_factory=list)
    peak_wavelength: int = 0


def plan_rounds(
    routes: list[Route],
    n_segments: int,
    n_wavelengths: int,
    fibers_per_direction: int = 1,
    strategy: str = "first_fit",
    rng: SeededRng | None = None,
    dsatur_fallback: bool = True,
    blocked: frozenset[int] = frozenset(),
    route_blocked: Sequence[frozenset[int]] | None = None,
    preoccupied: Mapping[tuple[Direction, int], int] | None = None,
    metrics: MetricsRegistry = NULL_METRICS,
) -> list[dict[int, tuple[int, int]]]:
    """Split one step's transfers into conflict-free rounds.

    Each returned dict maps the *original* route index to its (fiber,
    wavelength). The first round tries the configured strategy and, when it
    spills and ``dsatur_fallback`` is set, retries with
    :func:`dsatur_assign` before paying an extra reconfiguration round.
    Used by both the step-timing executor and the live event-driven
    simulation so their round structure is identical by construction.

    Route masks are computed once here and reused across spill rounds and
    the DSATUR fallback. ``route_blocked`` (per-route wavelength bans, e.g.
    dead MRR endpoint ports) and ``preoccupied`` (segment bitmask per
    (direction, wavelength) counting as busy, e.g. stuck-MRR quarantine)
    thread through both assignment paths.

    When ``metrics`` is enabled, each round records ``rwa.rounds`` and a
    ``rwa.wavelengths_per_round`` histogram sample; mask construction is
    profiled under the ``rwa.mask_build`` span and DSATUR retries count
    ``rwa.dsatur_fallback`` / ``rwa.dsatur_iterations``. Recording never
    influences the assignment itself.

    Raises:
        RwaInfeasibleError: If a fresh round places nothing (zero channel
            capacity for a direction in use) — sweeps catch this and report
            the combination instead of aborting.
    """
    _validate_rwa_args(n_segments, n_wavelengths, fibers_per_direction, strategy, rng)
    if route_blocked is not None and len(route_blocked) != len(routes):
        raise ValueError(
            f"route_blocked has {len(route_blocked)} entries "
            f"for {len(routes)} routes"
        )
    with metrics.span("rwa.mask_build"):
        masks = _route_masks(routes)
    channels = _allowed_channels(n_wavelengths, fibers_per_direction, blocked)
    remaining = list(range(len(routes)))
    rounds: list[dict[int, tuple[int, int]]] = []
    first = True
    while remaining:
        subset = [routes[i] for i in remaining]
        subset_masks = [masks[i] for i in remaining]
        subset_blocked = (
            [route_blocked[i] for i in remaining]
            if route_blocked is not None
            else None
        )
        assignment = _assign_with_masks(
            subset, subset_masks, n_wavelengths, channels, strategy, rng,
            route_blocked=subset_blocked, preoccupied=preoccupied,
        )
        if first and assignment.unassigned and dsatur_fallback:
            metrics.inc("rwa.dsatur_fallback")
            structured = dsatur_assign(
                subset, n_segments, n_wavelengths, fibers_per_direction,
                blocked=blocked, masks=subset_masks,
                route_blocked=subset_blocked, preoccupied=preoccupied,
                metrics=metrics,
            )
            if structured is not None:
                assignment = structured
        first = False
        if not assignment.assigned:
            raise RwaInfeasibleError(
                subset, n_wavelengths, fibers_per_direction, blocked
            )
        rounds.append(
            {remaining[local]: chan for local, chan in assignment.assigned.items()}
        )
        if metrics.enabled:
            metrics.inc("rwa.rounds")
            metrics.observe(
                "rwa.wavelengths_per_round",
                float(assignment.peak_wavelength),
                edges=COUNT_EDGES,
            )
        remaining = [remaining[j] for j in assignment.unassigned]
    return rounds


def _validate_rwa_args(
    n_segments: int,
    n_wavelengths: int,
    fibers_per_direction: int,
    strategy: str,
    rng: SeededRng | None,
) -> None:
    """Shared argument validation for the assignment entry points."""
    check_positive_int("n_segments", n_segments)
    check_positive_int("n_wavelengths", n_wavelengths)
    check_positive_int("fibers_per_direction", fibers_per_direction)
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    if strategy == "random_fit" and rng is None:
        raise ValueError("random_fit requires an rng")


def _assign_with_masks(
    routes: list[Route],
    masks: list[int],
    n_wavelengths: int,
    channels: list[tuple[int, int, int]],
    strategy: str,
    rng: SeededRng | None,
    route_blocked: Sequence[frozenset[int]] | None = None,
    preoccupied: Mapping[tuple[Direction, int], int] | None = None,
) -> AssignmentResult:
    """Bitmask assignment core shared by both public entry points.

    ``channels`` is the hoisted :func:`_allowed_channels` probe order;
    occupancy is one integer per (direction, slot) where ``slot`` flattens
    (fiber, wavelength). Random-Fit shuffles a fresh copy of the channel
    list per transfer, consuming the RNG exactly as the seed implementation
    did (one same-length shuffle per transfer, placed or not).

    ``preoccupied`` seeds the occupancy integers (quarantined spans behave
    exactly like already-busy channels, on every fiber of the direction);
    ``route_blocked`` bans wavelengths per route at probe time.
    """
    n_slots = channels[-1][0] + 1 if channels else 0
    busy = {direction: [0] * n_slots for direction in Direction}
    if preoccupied:
        for (direction, lam), span in preoccupied.items():
            for slot, _fiber, chan_lam in channels:
                if chan_lam == lam:
                    busy[direction][slot] |= span
    result = AssignmentResult()
    # Longest routes are hardest to place; assign them first. Ties keep the
    # original order so the outcome is deterministic.
    order = sorted(range(len(routes)), key=lambda i: (-routes[i].hops, i))
    random_fit = strategy == "random_fit"
    peak = 0
    for idx in order:
        mask = masks[idx]
        occ = busy[routes[idx].direction]
        bans = route_blocked[idx] if route_blocked is not None else None
        if random_fit:
            probe = channels.copy()
            rng.shuffle(probe)
        else:
            probe = channels
        for slot, fiber, lam in probe:
            if bans is not None and lam in bans:
                continue
            if occ[slot] & mask == 0:
                occ[slot] = occ[slot] | mask
                result.assigned[idx] = (fiber, lam)
                if lam >= peak:
                    peak = lam + 1
                break
        else:
            result.unassigned.append(idx)
    result.peak_wavelength = peak
    return result


def repair_rounds(*args, **kwargs):
    """Incrementally repair a cached solution against a constraint delta.

    Thin dispatcher to :func:`repro.optical.repair.repair_rounds` (imported
    lazily to keep the module graph acyclic — the repair module calls back
    into :func:`plan_rounds` for its fallback and paranoid oracle). See that
    module for the full contract.
    """
    from repro.optical.repair import repair_rounds as _repair_rounds

    return _repair_rounds(*args, **kwargs)


def assign_wavelengths(
    routes: list[Route],
    n_segments: int,
    n_wavelengths: int,
    fibers_per_direction: int = 1,
    strategy: str = "first_fit",
    rng: SeededRng | None = None,
    blocked: frozenset[int] = frozenset(),
    route_blocked: Sequence[frozenset[int]] | None = None,
    preoccupied: Mapping[tuple[Direction, int], int] | None = None,
) -> AssignmentResult:
    """Assign channels to routed transfers for one round.

    Args:
        routes: One route per transfer (list index identifies the transfer).
        n_segments: Ring size (segments per direction).
        n_wavelengths: Wavelengths per fiber.
        fibers_per_direction: Parallel fibers per direction.
        strategy: ``"first_fit"`` or ``"random_fit"``.
        rng: Required for ``"random_fit"``.
        blocked: Wavelengths unusable on every fiber in both directions.
        route_blocked: Per-route wavelength bans (dead MRR endpoint ports).
        preoccupied: Busy segment bitmask per (direction, wavelength)
            (stuck-MRR quarantine spans).

    Returns:
        An :class:`AssignmentResult`; ``assigned ∪ unassigned`` covers all
        inputs exactly once.
    """
    _validate_rwa_args(n_segments, n_wavelengths, fibers_per_direction, strategy, rng)
    if route_blocked is not None and len(route_blocked) != len(routes):
        raise ValueError(
            f"route_blocked has {len(route_blocked)} entries "
            f"for {len(routes)} routes"
        )
    return _assign_with_masks(
        routes,
        _route_masks(routes),
        n_wavelengths,
        _allowed_channels(n_wavelengths, fibers_per_direction, blocked),
        strategy,
        rng,
        route_blocked=route_blocked,
        preoccupied=preoccupied,
    )
