"""Ring topology: segments, directions, and shortest paths.

Segment ``i`` is the fiber span between node ``i`` and node ``(i+1) mod N``.
A clockwise (CW) transmission from ``a`` to ``b`` crosses segments
``a, a+1, …, b−1`` (mod N); counter-clockwise (CCW) crosses
``a−1, a−2, …, b`` (mod N). Each direction is a separate fiber (pool), so
CW and CCW transmissions never conflict — this is what lets a WRHT group's
two sides reuse the same wavelength indices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.validation import check_positive_int


class Direction(enum.Enum):
    """Transmission direction around the ring."""

    CW = "cw"
    CCW = "ccw"

    def opposite(self) -> "Direction":
        """The other direction."""
        return Direction.CCW if self is Direction.CW else Direction.CW


@dataclass(frozen=True)
class Route:
    """A concrete path: direction plus the segment ids it crosses, in order.

    ``hops`` (the number of crossed segments) is what the physical-layer
    budget counts as passed interfaces.
    """

    direction: Direction
    segments: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("a route must cross at least one segment")
        if len(set(self.segments)) != len(self.segments):
            raise ValueError(f"route revisits a segment: {self.segments}")

    @property
    def hops(self) -> int:
        """Number of segments crossed."""
        return len(self.segments)


class RingTopology:
    """An N-node bidirectional optical ring."""

    def __init__(self, n_nodes: int) -> None:
        check_positive_int("n_nodes", n_nodes)
        if n_nodes < 2:
            raise ValueError("a ring needs at least 2 nodes")
        self.n_nodes = n_nodes

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")

    def cw_distance(self, src: int, dst: int) -> int:
        """Hops from ``src`` to ``dst`` going clockwise."""
        self._check_node(src)
        self._check_node(dst)
        return (dst - src) % self.n_nodes

    def ccw_distance(self, src: int, dst: int) -> int:
        """Hops from ``src`` to ``dst`` going counter-clockwise."""
        return (src - dst) % self.n_nodes

    def cw_route(self, src: int, dst: int) -> Route:
        """The clockwise route (src != dst)."""
        dist = self.cw_distance(src, dst)
        if dist == 0:
            raise ValueError(f"no route from node {src} to itself")
        segments = tuple((src + k) % self.n_nodes for k in range(dist))
        return Route(Direction.CW, segments)

    def ccw_route(self, src: int, dst: int) -> Route:
        """The counter-clockwise route (src != dst)."""
        dist = self.ccw_distance(src, dst)
        if dist == 0:
            raise ValueError(f"no route from node {src} to itself")
        segments = tuple((src - 1 - k) % self.n_nodes for k in range(dist))
        return Route(Direction.CCW, segments)

    def shortest_route(self, src: int, dst: int) -> Route:
        """The shorter of the two directional routes.

        Exact ties (``dst`` diametrically opposite ``src`` on an even ring)
        alternate by endpoint order: ``src < dst`` goes CW, otherwise CCW.
        This balances the two fiber directions — with tie→CW, an all-to-all
        among k evenly spread nodes would overload the CW fibers and exceed
        the ``⌈k²/8⌉`` wavelength bound that assumes balanced directions.
        """
        cw = self.cw_distance(src, dst)
        ccw = self.ccw_distance(src, dst)
        if cw == 0:
            raise ValueError(f"no route from node {src} to itself")
        if cw < ccw or (cw == ccw and src < dst):
            return self.cw_route(src, dst)
        return self.ccw_route(src, dst)

    def route(self, src: int, dst: int, direction: Direction | None = None) -> Route:
        """A route in the given direction, or the shortest when ``None``."""
        if direction is None:
            return self.shortest_route(src, dst)
        if direction is Direction.CW:
            return self.cw_route(src, dst)
        return self.ccw_route(src, dst)
