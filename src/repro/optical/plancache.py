"""Compatibility alias for :mod:`repro.backend.plancache`.

The cross-run plan cache debuted here (PR 1) scoped to the optical
executors; the unified backend layer moved it behind the shared ``lower()``
seam so the electrical and analytic backends reuse it. This module
re-exports the public names so existing imports keep working.
"""

from __future__ import annotations

from repro.backend.plancache import (
    CachedRound,
    PlanCache,
    PlanCacheCounters,
    default_plan_cache,
)

__all__ = [
    "CachedRound",
    "PlanCache",
    "PlanCacheCounters",
    "default_plan_cache",
]
