"""Compatibility alias for :mod:`repro.backend.plancache`.

The cross-run plan cache debuted here (PR 1) scoped to the optical
executors; the unified backend layer moved it behind the shared ``lower()``
seam so the electrical and analytic backends reuse it. This module
re-exports the public names so existing imports keep working, but is
deprecated: import from :mod:`repro.backend.plancache` instead (the REP004
lint rule enforces this inside the repo).
"""

from __future__ import annotations

import warnings

from repro.backend.plancache import (
    CachedRound,
    PlanCache,
    PlanCacheCounters,
    default_plan_cache,
)

warnings.warn(
    "repro.optical.plancache is deprecated; import from "
    "repro.backend.plancache instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "CachedRound",
    "PlanCache",
    "PlanCacheCounters",
    "default_plan_cache",
]
