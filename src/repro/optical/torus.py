"""Optical 2-D torus/mesh substrate (prices the Sec 6.1 extension).

An ``R × C`` grid where every row and every column is its own optical ring
(or line, for a mesh): the natural silicon-photonics generalization of the
TeraRack ring, and the fabric the paper's Sec 6.1 sketch assumes. Routing
is dimension-ordered (row leg, then column leg), each leg taking the
shorter wrap direction on a torus (meshes have no wrap).

Wavelength assignment reuses the ring RWA machinery through a *virtual
segment space*: every (dimension, ring-index, direction, segment) gets a
unique integer id, and each route is expressed over those ids — two
transfers conflict exactly when they share a physical fiber span in the
same direction on the same wavelength, across row/column/leg combinations.

The executor mirrors :class:`~repro.optical.network.OpticalRingNetwork`:
bulk-synchronous steps, MRR reconfiguration per round, pattern-cached
pricing, spill-to-rounds under wavelength scarcity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.errors import BackendConfigError
from repro.backend.plancache import (
    CachedRound,
    PlanCache,
    PlanCacheCounters,
    default_plan_cache,
)
from repro.collectives.base import CommStep, Schedule
from repro.core.timing import CostModel
from repro.optical.config import OpticalSystemConfig
from repro.optical.rwa import plan_rounds
from repro.optical.topology import Direction, Route
from repro.util.validation import check_positive_int


class TorusTopology:
    """An ``R × C`` grid of row/column optical rings (or mesh lines)."""

    def __init__(self, rows: int, cols: int, wraparound: bool = True) -> None:
        check_positive_int("rows", rows)
        check_positive_int("cols", cols)
        self.rows = rows
        self.cols = cols
        self.wraparound = wraparound
        # Virtual segment space: row segments then column segments, two
        # directions each. Row r has `cols` spans (c -> c+1 wraps at the
        # end); column c has `rows` spans.
        self._row_base = 0
        self._col_base = rows * cols * 2

    @property
    def n_nodes(self) -> int:
        """Grid size."""
        return self.rows * self.cols

    @property
    def n_virtual_segments(self) -> int:
        """Size of the flattened (dimension, ring, direction, span) space."""
        return self.rows * self.cols * 2 + self.cols * self.rows * 2

    def node(self, r: int, c: int) -> int:
        """Node id of grid coordinate (row-major)."""
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise ValueError(f"coordinate ({r}, {c}) out of range")
        return r * self.cols + c

    def coords(self, node: int) -> tuple[int, int]:
        """Grid coordinate of a node id."""
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node {node} out of range")
        return divmod(node, self.cols)

    # -- virtual segment ids ----------------------------------------------
    def _row_segment(self, r: int, span: int, positive: bool) -> int:
        return self._row_base + ((r * self.cols + span) * 2) + (0 if positive else 1)

    def _col_segment(self, c: int, span: int, positive: bool) -> int:
        return self._col_base + ((c * self.rows + span) * 2) + (0 if positive else 1)

    def _line_spans(self, size: int, a: int, b: int) -> tuple[bool, list[int]]:
        """Spans crossed moving from index ``a`` to ``b`` within one ring
        of ``size`` positions; returns (positive_direction, spans)."""
        if a == b:
            return True, []
        forward = (b - a) % size
        backward = (a - b) % size
        if not self.wraparound:
            # A mesh line: only the direct (non-wrapping) path exists.
            if b > a:
                return True, list(range(a, b))
            return False, list(range(b, a))
        if forward < backward or (forward == backward and a < b):
            return True, [(a + k) % size for k in range(forward)]
        return False, [(b + k) % size for k in range(backward)]

    def route(self, src: int, dst: int) -> Route:
        """Dimension-ordered route: row leg to the target column, then
        column leg to the target row."""
        if src == dst:
            raise ValueError(f"no route from node {src} to itself")
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        segments: list[int] = []
        if c1 != c2:
            positive, spans = self._line_spans(self.cols, c1, c2)
            segments.extend(self._row_segment(r1, s, positive) for s in spans)
        if r1 != r2:
            positive, spans = self._line_spans(self.rows, r1, r2)
            segments.extend(self._col_segment(c2, s, positive) for s in spans)
        # Direction is folded into the virtual segment ids; the Route's
        # direction field is a constant placeholder.
        return Route(Direction.CW, tuple(segments))


@dataclass(frozen=True)
class TorusStepTiming:
    """Timing of one torus profile entry."""

    stage: str
    count: int
    n_transfers: int
    rounds: int
    duration: float


@dataclass
class TorusRunResult:
    """Result of pricing a schedule on the torus substrate.

    ``cache`` carries the cross-run plan-cache hit/miss/eviction tallies
    for this run (see :mod:`repro.backend.plancache`).
    """

    algorithm: str
    n_steps: int
    total_time: float
    step_timings: list[TorusStepTiming] = field(default_factory=list)
    cache: PlanCacheCounters = field(default_factory=PlanCacheCounters)

    @property
    def total_rounds(self) -> int:
        """Reconfiguration rounds across the run."""
        return sum(t.rounds * t.count for t in self.step_timings)


class TorusOpticalNetwork:
    """Schedule executor for the optical torus/mesh.

    Reuses the ring's :class:`~repro.optical.config.OpticalSystemConfig`
    for rates/overheads; ``config.n_nodes`` must equal ``rows × cols``.
    """

    def __init__(
        self,
        config: OpticalSystemConfig,
        rows: int,
        cols: int,
        wraparound: bool = True,
        plan_cache: PlanCache | None = None,
    ) -> None:
        if rows * cols != config.n_nodes:
            raise ValueError(
                f"{rows}x{cols} grid has {rows * cols} nodes but config says "
                f"{config.n_nodes}"
            )
        self.config = config
        self.topology = TorusTopology(rows, cols, wraparound=wraparound)
        self.plan_cache = default_plan_cache() if plan_cache is None else plan_cache
        # "torus" disambiguates from ring entries sharing the same config.
        self._plan_key_base = (config, rows, cols, wraparound, "torus")
        self._cost = config.cost_model()

    @property
    def cost_model(self) -> CostModel:
        """The analytical cost model used for payload durations."""
        return self._cost

    def execute(self, schedule: Schedule, bytes_per_elem: float = 4.0) -> TorusRunResult:
        """Price ``schedule`` on the torus (bulk-synchronous steps)."""
        if schedule.n_nodes > self.config.n_nodes:
            raise BackendConfigError(
                f"schedule spans {schedule.n_nodes} nodes but the torus has "
                f"{self.config.n_nodes}",
                backend="optical-torus",
            )
        if bytes_per_elem <= 0:
            raise BackendConfigError(
                f"bytes_per_elem must be positive, got {bytes_per_elem!r}",
                backend="optical-torus",
            )
        result = TorusRunResult(
            algorithm=schedule.algorithm, n_steps=schedule.n_steps, total_time=0.0
        )
        cache: dict[tuple, TorusStepTiming] = {}
        for step, count in schedule.timing_profile:
            key = step.pattern_key()
            timing = cache.get(key)
            if timing is None:
                timing = self._time_step(
                    step, count, bytes_per_elem, key, result.cache
                )
                cache[key] = timing
            result.step_timings.append(timing)
            result.total_time += timing.duration * count
        return result

    def _time_step(
        self,
        step: CommStep,
        count: int,
        bytes_per_elem: float,
        pattern_key: tuple,
        counters: PlanCacheCounters,
    ) -> TorusStepTiming:
        use_cache = self.plan_cache.enabled
        if use_cache:
            key = (pattern_key, self._plan_key_base, bytes_per_elem)
            cached = self.plan_cache.get(key)
            if cached is not None:
                counters.hits += 1
                return self._timing_from_rounds(step, count, cached)
            counters.misses += 1
        routes = [self.topology.route(t.src, t.dst) for t in step.transfers]
        rounds = plan_rounds(
            routes,
            n_segments=self.topology.n_virtual_segments,
            n_wavelengths=self.config.n_wavelengths,
            fibers_per_direction=self.config.fibers_per_direction,
            blocked=self.config.failed_wavelengths,
        )
        summary = tuple(
            CachedRound(
                n_circuits=len(assignment),
                max_payload_s=max(
                    self._cost.payload_time(step.transfers[i].n_elems * bytes_per_elem)
                    for i in assignment
                ),
                peak_wavelength=max(lam for _, lam in assignment.values()) + 1,
                payload_bytes=sum(
                    step.transfers[i].n_elems * bytes_per_elem for i in assignment
                ),
            )
            for assignment in rounds
        )
        if use_cache:
            counters.evictions += self.plan_cache.put(key, summary)
        return self._timing_from_rounds(step, count, summary)

    def _timing_from_rounds(
        self, step: CommStep, count: int, rounds: tuple[CachedRound, ...]
    ) -> TorusStepTiming:
        """Fold per-round summaries into a TorusStepTiming (same float
        accumulation order as fresh pricing, so cache hits are bit-exact)."""
        duration = 0.0
        for rnd in rounds:
            duration += self.config.mrr_reconfig_delay + rnd.max_payload_s
        return TorusStepTiming(
            stage=step.stage, count=count, n_transfers=step.n_transfers,
            rounds=len(rounds), duration=duration,
        )
