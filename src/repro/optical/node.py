"""TeraRack node structure and per-round transceiver constraints (Fig 1a).

A TeraRack node carries four optical interfaces, each with an array of 64
micro-ring resonators, organized as one transmit and one receive set per
ring direction. The constraints this imposes on a single communication
round are:

- all of a node's concurrent transmissions **in one direction** must use
  distinct wavelengths (one MRR modulates one wavelength), and likewise for
  receptions;
- a node may transmit and receive simultaneously in both directions (the
  "two sets of transmitters and receivers" the paper relies on for the
  two-sided group collect).

Segment-exclusive wavelength assignment already implies these constraints
(same-direction transmissions from one node share the node's adjacent
segment), but :func:`validate_node_constraints` checks them independently —
it is the test suite's cross-check that the RWA is not quietly violating
hardware limits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.base import Transfer
from repro.optical.topology import Route
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class TeraRackNode:
    """Static description of one node's optical hardware.

    Attributes:
        node_id: Ring position.
        n_interfaces: Optical interfaces (4 on TeraRack).
        mrrs_per_interface: Micro-ring resonators per interface (64).
        tx_sets: Independent transmit sets (one per direction).
        rx_sets: Independent receive sets (one per direction).
    """

    node_id: int
    n_interfaces: int = 4
    mrrs_per_interface: int = 64
    tx_sets: int = 2
    rx_sets: int = 2

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {self.node_id!r}")
        check_positive_int("n_interfaces", self.n_interfaces)
        check_positive_int("mrrs_per_interface", self.mrrs_per_interface)
        check_positive_int("tx_sets", self.tx_sets)
        check_positive_int("rx_sets", self.rx_sets)

    @property
    def max_concurrent_wavelengths(self) -> int:
        """Wavelengths one Tx/Rx set can drive at once (one per MRR)."""
        return self.mrrs_per_interface


class NodeConstraintError(ValueError):
    """A round violates a node's transceiver limits."""


def node_violations(
    assignments: list[tuple[Transfer, Route, int, int]],
    mrrs_per_interface: int = 64,
) -> list[str]:
    """One round's node-hardware violations as messages (empty = clean).

    The shared implementation behind :func:`validate_node_constraints`
    (raising runtime check) and the PLAN002 port-budget rule in
    :mod:`repro.check.plan_rules`.

    Args:
        assignments: ``(transfer, route, fiber, wavelength)`` per circuit.
        mrrs_per_interface: Wavelength capacity of one Tx/Rx set.
    """
    violations: list[str] = []
    tx_channels: dict[tuple[int, str, int], set[int]] = {}
    rx_channels: dict[tuple[int, str, int], set[int]] = {}
    for transfer, route, fiber, wavelength in assignments:
        tx_key = (transfer.src, route.direction.value, fiber)
        rx_key = (transfer.dst, route.direction.value, fiber)
        tx_used = tx_channels.setdefault(tx_key, set())
        if wavelength in tx_used:
            violations.append(
                f"node {transfer.src} transmits twice on wavelength "
                f"{wavelength} ({route.direction.value}, fiber {fiber})"
            )
        tx_used.add(wavelength)
        rx_used = rx_channels.setdefault(rx_key, set())
        if wavelength in rx_used:
            violations.append(
                f"node {transfer.dst} receives twice on wavelength "
                f"{wavelength} ({route.direction.value}, fiber {fiber})"
            )
        rx_used.add(wavelength)
    for label, table in (("transmit", tx_channels), ("receive", rx_channels)):
        for (node, direction, fiber), used in table.items():
            if len(used) > mrrs_per_interface:
                violations.append(
                    f"node {node} drives {len(used)} {label} wavelengths "
                    f"({direction}, fiber {fiber}) but has only "
                    f"{mrrs_per_interface} MRRs"
                )
    return violations


def validate_node_constraints(
    assignments: list[tuple[Transfer, Route, int, int]],
    mrrs_per_interface: int = 64,
) -> None:
    """Check one round's channel assignments against node hardware limits.

    Thin raising wrapper over :func:`node_violations`.

    Raises:
        NodeConstraintError: on duplicate wavelengths per (node, direction,
            fiber, role) or on exceeding the MRR count.
    """
    violations = node_violations(assignments, mrrs_per_interface=mrrs_per_interface)
    if violations:
        raise NodeConstraintError(violations[0])
