"""Optical ring interconnect substrate (TeraRack-like, Sec 3.2 / Table 2).

A circuit-switched WDM ring: N nodes joined by unidirectional fiber
segments in both directions (clockwise and counter-clockwise, optionally
multiple fibers per direction), ``w`` wavelengths per fiber at 40 Gbit/s
each, micro-ring resonators reconfigured between communication steps
(25 µs) and O/E/O conversion charged per 72-byte packet (497 fs).

Modules:

- :mod:`~repro.optical.config` — Table 2 parameters and the calibrated /
  strict line-rate interpretations (DESIGN.md §6).
- :mod:`~repro.optical.topology` — ring segments and directional paths.
- :mod:`~repro.optical.node` — TeraRack node structure and per-round
  transceiver constraints.
- :mod:`~repro.optical.rwa` — routing and wavelength assignment
  (First-Fit / Random-Fit) over integer segment bitmasks, with exact
  segment-conflict checking.
- :mod:`~repro.optical.reconfig` — MRR wavelength-tuning cost model
  and the tuning/transmission overlap planning pass (held/blocked/free
  claim classification, the reconfigure-vs-hold estimator); disabled —
  bit-identical — unless the config sets ``t_tune``.
- :mod:`~repro.optical.repair` — incremental DSATUR repair: splice a
  fault/constraint delta into a previously solved coloring instead of
  recoloring from scratch (untouched claims pinned, validated, falls back
  past 50% affected).
- :mod:`~repro.backend.plancache` — bounded LRU of priced step plans shared
  across executors and ``execute()`` calls (cross-run sweeps reuse RWA
  results bit-exactly); :mod:`repro.service.store` layers the sharded
  persistent plan store underneath.
- :mod:`~repro.optical.circuit` — established circuits and conflict
  validation helpers used by the tests.
- :mod:`~repro.optical.phy` — per-path insertion-loss/crosstalk checks.
- :mod:`~repro.optical.network` — the step-synchronous executor that prices
  a :class:`~repro.collectives.base.Schedule` on this substrate.
"""

from repro.optical.config import OpticalSystemConfig
from repro.optical.topology import Direction, RingTopology, Route
from repro.optical.rwa import (
    AssignmentResult,
    RwaInfeasibleError,
    assign_wavelengths,
    plan_rounds,
)
from repro.backend.plancache import (
    CachedRound,
    PlanCache,
    PlanCacheCounters,
    default_plan_cache,
)
from repro.optical.reconfig import (
    ReconfigModel,
    apply_reconfig,
    choose_plan,
    exposed_tuning,
    plan_total_time,
    round_claims,
    split_tuning,
)
from repro.optical.repair import (
    RwaContext,
    RwaSolution,
    capture_solution,
    repair_rounds,
    validate_rounds,
)
from repro.optical.circuit import Circuit, validate_no_conflicts
from repro.optical.livesim import LiveOpticalSimulation, LiveRunResult
from repro.optical.network import OpticalRingNetwork, OpticalRunResult, StepTiming
from repro.optical.node import TeraRackNode, validate_node_constraints
from repro.optical.phy import path_feasible, validate_route_phy
from repro.optical.torus import TorusOpticalNetwork, TorusRunResult, TorusTopology

__all__ = [
    "AssignmentResult",
    "CachedRound",
    "Circuit",
    "Direction",
    "LiveOpticalSimulation",
    "LiveRunResult",
    "OpticalRingNetwork",
    "OpticalRunResult",
    "OpticalSystemConfig",
    "PlanCache",
    "PlanCacheCounters",
    "ReconfigModel",
    "RingTopology",
    "Route",
    "RwaContext",
    "RwaInfeasibleError",
    "RwaSolution",
    "StepTiming",
    "TeraRackNode",
    "TorusOpticalNetwork",
    "TorusRunResult",
    "TorusTopology",
    "apply_reconfig",
    "assign_wavelengths",
    "capture_solution",
    "choose_plan",
    "default_plan_cache",
    "exposed_tuning",
    "path_feasible",
    "plan_rounds",
    "plan_total_time",
    "repair_rounds",
    "round_claims",
    "split_tuning",
    "validate_no_conflicts",
    "validate_node_constraints",
    "validate_rounds",
    "validate_route_phy",
]
