"""Incremental DSATUR repair of cached RWA solutions.

:func:`repro.optical.rwa.plan_rounds` solves every step from scratch. That
is the right tool at lowering time, but a fault event or a single-transfer
edit invalidates only the transfers whose channel *claims* intersect the
delta — recoloring the whole step pays O(plan) work for an O(delta) change.
This module repairs a previously computed solution instead:

1. **Directly invalidated** transfers are found by intersecting each
   assignment with the delta: a newly dead wavelength, a new per-route ban
   (dead MRR endpoint port), a new quarantine span overlapping the route's
   segment bitmask, or an edited route (fiber-cut detour).
2. The invalidated set is recolored by **DSATUR over the conflict
   subgraph** with every untouched transfer *pinned*: pinned claims are
   seeded into the occupancy the recoloring probes, so the repair can never
   disturb a healthy assignment.
3. When a recolored transfer has no free channel under the pins, its
   pinned conflict neighbours (transfers sharing a segment bit in the same
   direction) are **unpinned transitively** and the recoloring retries —
   the cascade the paper's wavelength-reuse structure makes rare but
   possible.
4. If the cascade grows past ``max_affected_frac`` of the step (or the
   pinning is infeasible outright), repair **falls back to a full
   recolor** via ``plan_rounds`` — counted under ``rwa.repair_fallback``
   so sweeps can see how often the incremental path pays off.

Correctness oracle
------------------

``paranoid=True`` cross-checks every repair against a from-scratch
recolor: the repaired rounds are exhaustively re-validated
(:func:`validate_rounds`) and, when the repaired round count differs from
the scratch solution's, the scratch result is returned instead (counted
under ``rwa.repair_paranoid_divergence``). The live executor and the fault
smoke CLI expose this as ``--paranoid-repair``; the property tests drive
it over random deltas.

Repaired colorings are *valid by construction* but need not be identical
to a from-scratch recolor — repair optimizes for perturbation, scratch for
packing. Both must pass the :mod:`repro.check` plan rules; the test suite
asserts exactly that.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.optical.topology import Direction, Route
from repro.sim.rng import SeededRng

#: Default cascade bound: past this fraction of invalidated transfers a
#: repair falls back to a full recolor (the subgraph is no longer "small").
DEFAULT_MAX_AFFECTED_FRAC = 0.5


class RepairValidationError(AssertionError):
    """A repaired assignment violated a channel constraint (repair bug)."""


@dataclass(frozen=True)
class RwaContext:
    """The channel-space constraints one RWA solution was computed under.

    Attributes:
        n_segments: Ring size (segments per direction).
        n_wavelengths: Wavelengths per fiber.
        fibers_per_direction: Parallel fibers per direction.
        blocked: Wavelengths unusable everywhere.
        route_blocked: Optional per-route wavelength bans.
        preoccupied: Busy segment bitmask per (direction, wavelength).
    """

    n_segments: int
    n_wavelengths: int
    fibers_per_direction: int = 1
    blocked: frozenset[int] = frozenset()
    route_blocked: tuple[frozenset[int], ...] | None = None
    preoccupied: Mapping[tuple[Direction, int], int] | None = None


@dataclass
class RwaSolution:
    """A solved step: routes, their masks, and the per-round assignments.

    Captured by :class:`~repro.optical.network.OpticalRingNetwork` when
    ``keep_solutions`` is set, and consumed by :func:`repair_rounds` when a
    fault delta arrives.

    Attributes:
        routes: One route per transfer (index identifies the transfer).
        masks: Segment bitmask per route.
        rounds: ``plan_rounds`` output — per round, index -> (fiber, λ).
        ctx: The constraints the solution was computed under.
    """

    routes: list[Route]
    masks: list[int]
    rounds: list[dict[int, tuple[int, int]]]
    ctx: RwaContext = field(default_factory=lambda: RwaContext(1, 1))


def route_masks(routes: Sequence[Route]) -> list[int]:
    """Segment-set bitmask per route (bit ``s`` set iff segment crossed)."""
    masks = []
    for route in routes:
        mask = 0
        for seg in route.segments:
            mask |= 1 << seg
        masks.append(mask)
    return masks


def capture_solution(
    routes: Sequence[Route],
    rounds: Sequence[Mapping[int, tuple[int, int]]],
    ctx: RwaContext,
    masks: Sequence[int] | None = None,
) -> RwaSolution:
    """Freeze a ``plan_rounds`` result into a repairable solution."""
    return RwaSolution(
        routes=list(routes),
        masks=list(masks) if masks is not None else route_masks(routes),
        rounds=[dict(r) for r in rounds],
        ctx=ctx,
    )


def affected_indices(
    solution: RwaSolution,
    new_routes: Sequence[Route],
    new_masks: Sequence[int],
    new_ctx: RwaContext,
    edited: frozenset[int] = frozenset(),
) -> set[int]:
    """Transfers whose existing claims intersect the constraint delta.

    A transfer is invalidated when its assigned wavelength became globally
    blocked, its per-route ban set grew to cover the assignment, a new
    quarantine span overlaps its segment mask on the assigned wavelength,
    or its route itself changed (``edited`` — fiber-cut detours). Removed
    constraints never invalidate anything: the old assignment stays
    feasible when the feasible set grows.
    """
    old, new = solution.ctx, new_ctx
    newly_blocked = new.blocked - old.blocked
    pre_old = old.preoccupied or {}
    pre_new = new.preoccupied or {}
    affected = set(edited)
    for rnd in solution.rounds:
        for idx, (_fiber, lam) in rnd.items():
            if idx in affected:
                continue
            if lam in newly_blocked:
                affected.add(idx)
                continue
            bans_old = old.route_blocked[idx] if old.route_blocked else frozenset()
            bans_new = new.route_blocked[idx] if new.route_blocked else frozenset()
            if lam in bans_new - bans_old:
                affected.add(idx)
                continue
            direction = new_routes[idx].direction
            grown = pre_new.get((direction, lam), 0) & ~pre_old.get((direction, lam), 0)
            if grown & new_masks[idx]:
                affected.add(idx)
    return affected


def _allowed_channels(ctx: RwaContext) -> list[tuple[int, int]]:
    """The (fiber, wavelength) probe order, minus globally blocked λ."""
    return [
        (f, lam)
        for f in range(ctx.fibers_per_direction)
        for lam in range(ctx.n_wavelengths)
        if lam not in ctx.blocked
    ]


def _pin_recolor(
    routes: Sequence[Route],
    masks: Sequence[int],
    rounds: Sequence[Mapping[int, tuple[int, int]]],
    affected: set[int],
    ctx: RwaContext,
) -> tuple[list[dict[int, tuple[int, int]]] | None, set[int]]:
    """Recolor ``affected`` with every other transfer pinned in place.

    The color space is (round, fiber, wavelength); probe order prefers a
    transfer's earliest round so the splice perturbs the plan minimally.
    Selection follows DSATUR over the affected conflict subgraph with the
    seed kernel's tie order (saturation, degree, lowest index).

    Returns:
        ``(new_rounds, set())`` on success, or ``(None, stuck)`` where
        ``stuck`` holds the first vertex that had no free channel — the
        caller unpins its neighbours and retries.
    """
    allowed = _allowed_channels(ctx)
    capacity = len(allowed)
    if capacity == 0:
        return None, set(affected)
    n_rounds = len(rounds)
    n_colors = n_rounds * capacity
    chan_index = {chan: c for c, chan in enumerate(allowed)}

    # Occupancy seeded from pinned claims plus quarantine spans.
    busy: list[dict[Direction, list[int]]] = [
        {d: [0] * capacity for d in Direction} for _ in range(n_rounds)
    ]
    pre = ctx.preoccupied or {}
    if pre:
        for c, (_f, lam) in enumerate(allowed):
            for direction in Direction:
                span = pre.get((direction, lam), 0)
                if span:
                    for r in range(n_rounds):
                        busy[r][direction][c] |= span
    for r, rnd in enumerate(rounds):
        for idx, chan in rnd.items():
            if idx in affected:
                continue
            c = chan_index.get(chan)
            if c is None:
                # A pinned claim on a now-banned channel means the delta
                # computation missed it — treat as infeasible pinning.
                return None, {idx}
            busy[r][routes[idx].direction][c] |= masks[idx]

    order = sorted(affected)
    adj: dict[int, list[int]] = {v: [] for v in order}
    for i, v in enumerate(order):
        for u in order[i + 1 :]:
            if routes[v].direction is routes[u].direction and masks[v] & masks[u]:
                adj[v].append(u)
                adj[u].append(v)
    deg = {v: len(adj[v]) for v in order}
    # Bans and pinned occupancy are pre-marked as seen WITHOUT saturation,
    # mirroring dsatur_assign's fault handling: the selection order among
    # the affected vertices depends only on their mutual conflicts.
    seen = {v: bytearray(n_colors) for v in order}
    for v in order:
        bans = ctx.route_blocked[v] if ctx.route_blocked else frozenset()
        mask = masks[v]
        direction = routes[v].direction
        for c, (_f, lam) in enumerate(allowed):
            banned = lam in bans
            for r in range(n_rounds):
                if banned or busy[r][direction][c] & mask:
                    seen[v][r * capacity + c] = 1

    sat = {v: 0 for v in order}
    heap = [(0, -deg[v], v) for v in order]
    heapq.heapify(heap)
    colors: dict[int, int] = {}
    while len(colors) < len(order):
        while True:
            neg_sat, _neg_deg, pick = heapq.heappop(heap)
            if pick not in colors and -neg_sat == sat[pick]:
                break
        row = seen[pick]
        color = next((c for c in range(n_colors) if not row[c]), None)
        if color is None:
            return None, {pick}
        colors[pick] = color
        r, c = divmod(color, capacity)
        busy[r][routes[pick].direction][c] |= masks[pick]
        for peer in adj[pick]:
            if peer in colors or seen[peer][color]:
                continue
            seen[peer][color] = 1
            sat[peer] += 1
            heapq.heappush(heap, (-sat[peer], -deg[peer], peer))

    new_rounds = [
        {idx: chan for idx, chan in rnd.items() if idx not in affected}
        for rnd in rounds
    ]
    for v in order:
        r, c = divmod(colors[v], capacity)
        new_rounds[r][v] = allowed[c]
    return [rnd for rnd in new_rounds if rnd], set()


def repair_rounds(
    solution: RwaSolution,
    new_routes: Sequence[Route],
    new_ctx: RwaContext,
    *,
    edited: frozenset[int] = frozenset(),
    strategy: str = "first_fit",
    rng: SeededRng | None = None,
    max_affected_frac: float = DEFAULT_MAX_AFFECTED_FRAC,
    paranoid: bool = False,
    metrics: MetricsRegistry = NULL_METRICS,
) -> list[dict[int, tuple[int, int]]]:
    """Splice a constraint delta into a cached solution.

    Args:
        solution: The cached assignment (same transfer indexing as
            ``new_routes``).
        new_routes: Routes under the new constraints; differs from
            ``solution.routes`` only at ``edited`` indices.
        new_ctx: The new channel-space constraints.
        edited: Indices whose route (or payload identity) changed and must
            be recolored regardless of claim intersection.
        strategy / rng: Forwarded to the full-recolor fallback only — the
            incremental path itself is deterministic.
        max_affected_frac: Cascade bound; past it the repair falls back to
            a full recolor (``rwa.repair_fallback``).
        paranoid: Cross-check against a from-scratch recolor (see module
            docstring); the oracle behind ``--paranoid-repair``.
        metrics: Records ``rwa.repair_calls``, ``rwa.repair_affected``,
            ``rwa.repair_noop``, ``rwa.repair_cascades``,
            ``rwa.repair_fallback`` and ``rwa.repair_paranoid_divergence``
            plus the wall-clock ``rwa.repair`` span.

    Returns:
        Rounds in ``plan_rounds`` format, covering every index exactly
        once and valid under ``new_ctx``.
    """
    from repro.optical.rwa import plan_rounds

    n = len(new_routes)
    if n != len(solution.routes):
        raise ValueError(
            f"solution covers {len(solution.routes)} transfers but the "
            f"delta has {n}"
        )
    metrics.inc("rwa.repair_calls")

    def full_recolor(
        oracle: bool = False,
    ) -> list[dict[int, tuple[int, int]]]:
        # The paranoid oracle's scratch solve is a cross-check, not a
        # fallback: it neither counts rwa.repair_fallback nor distorts the
        # plan_rounds counters of the run under observation.
        if not oracle:
            metrics.inc("rwa.repair_fallback")
        return plan_rounds(
            list(new_routes),
            n_segments=new_ctx.n_segments,
            n_wavelengths=new_ctx.n_wavelengths,
            fibers_per_direction=new_ctx.fibers_per_direction,
            strategy=strategy,
            rng=rng,
            blocked=new_ctx.blocked,
            route_blocked=new_ctx.route_blocked,
            preoccupied=new_ctx.preoccupied,
            metrics=NULL_METRICS if oracle else metrics,
        )

    with metrics.span("rwa.repair"):
        masks = list(solution.masks)
        for i in sorted(edited):
            masks[i] = route_masks([new_routes[i]])[0]
        affected = affected_indices(solution, new_routes, masks, new_ctx, edited)
        metrics.inc("rwa.repair_affected", len(affected))
        if not affected:
            metrics.inc("rwa.repair_noop")
            return [dict(rnd) for rnd in solution.rounds]

        repaired: list[dict[int, tuple[int, int]]] | None = None
        while True:
            if len(affected) > max_affected_frac * n:
                repaired = None
                break
            repaired, stuck = _pin_recolor(
                new_routes, masks, solution.rounds, affected, new_ctx
            )
            if repaired is not None:
                break
            # Unpin the stuck vertices' conflict neighbours and retry —
            # the transitive closure over the bitmask occupancy.
            grown = set(affected)
            for v in stuck:
                direction = new_routes[v].direction
                mask = masks[v]
                for u in range(n):
                    if u not in grown and new_routes[u].direction is direction and masks[u] & mask:
                        grown.add(u)
            if grown == affected:
                repaired = None
                break
            metrics.inc("rwa.repair_cascades")
            affected = grown

        if repaired is None:
            return full_recolor()

    if paranoid:
        validate_rounds(new_routes, masks, repaired, new_ctx)
        scratch = full_recolor(oracle=True)
        if len(scratch) != len(repaired):
            metrics.inc("rwa.repair_paranoid_divergence")
            return scratch
    return repaired


def validate_rounds(
    routes: Sequence[Route],
    masks: Sequence[int],
    rounds: Sequence[Mapping[int, tuple[int, int]]],
    ctx: RwaContext,
) -> None:
    """Exhaustively re-derive every channel constraint on ``rounds``.

    Checks coverage (each index assigned exactly once), segment
    exclusivity per (round, direction, fiber, wavelength), global and
    per-route wavelength bans, and quarantine-span disjointness.

    Raises:
        RepairValidationError: Naming the first violated constraint.
    """
    seen_idx: set[int] = set()
    pre = ctx.preoccupied or {}
    for r, rnd in enumerate(rounds):
        occupancy: dict[tuple[Direction, int, int], int] = {}
        for idx, (fiber, lam) in rnd.items():
            if idx in seen_idx:
                raise RepairValidationError(f"transfer {idx} assigned twice")
            seen_idx.add(idx)
            if lam in ctx.blocked:
                raise RepairValidationError(
                    f"round {r}: transfer {idx} rides blocked wavelength {lam}"
                )
            if ctx.route_blocked is not None and lam in ctx.route_blocked[idx]:
                raise RepairValidationError(
                    f"round {r}: transfer {idx} rides banned wavelength {lam}"
                )
            if fiber >= ctx.fibers_per_direction or lam >= ctx.n_wavelengths:
                raise RepairValidationError(
                    f"round {r}: transfer {idx} on out-of-range channel "
                    f"({fiber}, {lam})"
                )
            direction = routes[idx].direction
            if pre.get((direction, lam), 0) & masks[idx]:
                raise RepairValidationError(
                    f"round {r}: transfer {idx} crosses a quarantined span "
                    f"on wavelength {lam}"
                )
            key = (direction, fiber, lam)
            if occupancy.get(key, 0) & masks[idx]:
                raise RepairValidationError(
                    f"round {r}: channel {key} carries overlapping segments"
                )
            occupancy[key] = occupancy.get(key, 0) | masks[idx]
    missing = set(range(len(routes))) - seen_idx
    if missing:
        raise RepairValidationError(
            f"transfers never assigned: {sorted(missing)}"
        )
