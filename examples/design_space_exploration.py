#!/usr/bin/env python
"""Design-space exploration: picking the WRHT group size under physics.

Sec 4.4's message made concrete: the group size ``m`` wants to be as large
as Lemma 1 allows (``2w+1``), but insertion loss and crosstalk cap the
longest lightpath, and Eq 7 makes *small* groups pay too (more hierarchy
levels → longer top-level spans). This script sweeps the laser power
budget and shows, for a 1024-node ring:

- the maximum feasible group size ``m'`` (Eqs 7–13),
- the resulting step count θ and communication time for a VGG16 gradient,
- the BER margin on the longest path.

Run:  python examples/design_space_exploration.py
"""

from repro.core.constraints import (
    OpticalPhyParams,
    ber_from_snr,
    max_communication_length,
    max_group_size,
    snr_db,
    worst_case_crosstalk_power,
)
from repro.core.planner import plan_wrht
from repro.core.timing import wrht_time
from repro.dnn.workload import workload_by_name
from repro.optical import OpticalSystemConfig
from repro.util.tables import AsciiTable
from repro.util.units import format_seconds

N_NODES = 1024
N_WAVELENGTHS = 64


def main() -> None:
    workload = workload_by_name("VGG16")
    cost = OpticalSystemConfig(n_nodes=N_NODES, n_wavelengths=N_WAVELENGTHS).cost_model()

    table = AsciiTable(
        ["laser (dBm)", "max m'", "chosen m", "θ", "comm time", "worst-path BER"]
    )
    for laser_dbm in (8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 15.0):
        phy = OpticalPhyParams(laser_power_dbm=laser_dbm)
        try:
            cap = max_group_size(N_NODES, phy, w=N_WAVELENGTHS)
        except ValueError:
            table.add_row([laser_dbm, "-", "-", "-", "infeasible", "-"])
            continue
        plan = plan_wrht(N_NODES, N_WAVELENGTHS, phy=phy)
        time = wrht_time(
            N_NODES, float(workload.gradient_bytes), cost,
            m=plan.m, w=N_WAVELENGTHS,
        )
        l_max = max_communication_length(plan.m, N_NODES)
        noise = worst_case_crosstalk_power(l_max, phy)
        ber = ber_from_snr(snr_db(phy.signal_power_mw, noise, phy.other_noise_mw))
        table.add_row(
            [laser_dbm, cap, plan.m, plan.theta, format_seconds(time), f"{ber:.1e}"]
        )
    print(f"=== WRHT group size under optical constraints "
          f"(N={N_NODES}, w={N_WAVELENGTHS}, {workload.name}) ===")
    print(table.render())
    print(
        "\nReading: more laser power -> longer feasible lightpaths -> larger"
        "\ngroups -> fewer steps. Below ~10 dBm even small groups fail because"
        "\nEq 7 makes extra hierarchy levels *lengthen* the worst path."
    )


if __name__ == "__main__":
    main()
