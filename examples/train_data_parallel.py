#!/usr/bin/env python
"""Data-parallel DNN training with real All-reduce schedules (Eqs 1–5).

The paper's motivating workload, end to end in this library: 16 simulated
workers train an MLP on a synthetic MNIST-like dataset; every iteration's
gradient synchronization executes an actual All-reduce schedule (WRHT by
default — switch with ``--algorithm``), and each synchronization is priced
on the optical ring so you can see the communication cost WRHT saves.

The script also cross-checks the headline property: data-parallel training
with any collective produces exactly the same weights as one worker
training on the full batch.

Run:  python examples/train_data_parallel.py [--algorithm ring|bt|rd|hring|wrht]
"""

import argparse

import numpy as np

from repro.dnn.autograd import MLP
from repro.dnn.datasets import SyntheticClassification
from repro.dnn.training import DataParallelTrainer
from repro.optical import OpticalRingNetwork, OpticalSystemConfig
from repro.util.units import format_seconds

N_WORKERS = 16
N_WAVELENGTHS = 8
BATCH = 128
ITERATIONS = 40


def model_factory() -> MLP:
    return MLP.of_widths([64, 48, 10], seed=42)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--algorithm", default="wrht",
        choices=("ring", "bt", "rd", "hring", "wrht"),
    )
    args = parser.parse_args()

    dataset = SyntheticClassification(n_features=64, n_classes=10,
                                      noise_scale=0.6, seed=7)
    batches = [dataset.batch(BATCH) for _ in range(ITERATIONS)]

    kwargs = {"n_wavelengths": N_WAVELENGTHS} if args.algorithm == "wrht" else {}
    trainer = DataParallelTrainer(
        model_factory, N_WORKERS, algorithm=args.algorithm, lr=0.1, **kwargs
    )
    net = OpticalRingNetwork(
        OpticalSystemConfig(n_nodes=N_WORKERS, n_wavelengths=N_WAVELENGTHS)
    )
    report = trainer.train(
        batches, comm_pricer=lambda t: net.execute(t.schedule).total_time
    )

    print(f"=== {N_WORKERS}-worker data-parallel training, "
          f"{args.algorithm.upper()} gradient sync ===")
    for i in range(0, ITERATIONS, 8):
        print(f"  iter {i:3d}  loss {report.losses[i]:.4f}")
    print(f"  iter {ITERATIONS - 1:3d}  loss {report.losses[-1]:.4f}")
    print(f"\nAll-reduce schedule: {trainer.schedule.n_steps} steps per iteration")
    print(f"Comm time per iteration on the optical ring: "
          f"{format_seconds(report.comm_time_per_iter)}")

    # Equivalence check against single-worker full-batch training.
    reference = model_factory()
    for x, y in batches:
        reference.loss_and_gradients(x, y)
        reference.sgd_step(0.1)
    if np.allclose(trainer.consensus_state(), reference.state_vector(),
                   rtol=1e-9, atol=1e-12):
        print("\nWeights match single-worker full-batch training exactly: "
              "the schedule is a correct All-reduce.")
    else:  # pragma: no cover - would indicate a library bug
        raise SystemExit("DIVERGED from single-worker reference!")


if __name__ == "__main__":
    main()
