#!/usr/bin/env python
"""WRHT on torus and mesh topologies (the Sec 6.1 extension).

Builds executable WRHT schedules for 2-D tori/meshes, verifies the
All-reduce postcondition numerically, and compares step counts against the
1-D ring WRHT and a plain Ring All-reduce on the same node count — showing
the extension keeps the logarithmic step behaviour the ring version has.

Run:  python examples/torus_extension.py
"""

from repro.collectives import build_schedule, verify_allreduce
from repro.core.steps import ring_steps, wrht_steps
from repro.core.torus import build_torus_wrht_schedule
from repro.util.tables import AsciiTable

WAVELENGTHS = 16
GROUP_SIZE = 5


def main() -> None:
    table = AsciiTable(
        ["grid", "nodes", "torus WRHT", "mesh WRHT", "ring WRHT", "Ring all-reduce"]
    )
    for rows, cols in ((4, 4), (8, 8), (16, 16), (32, 32)):
        n = rows * cols
        torus = build_torus_wrht_schedule(
            rows, cols, 64, m=GROUP_SIZE, n_wavelengths=WAVELENGTHS, topology="torus"
        )
        mesh = build_torus_wrht_schedule(
            rows, cols, 64, m=GROUP_SIZE, n_wavelengths=WAVELENGTHS, topology="mesh"
        )
        verify_allreduce(torus)
        verify_allreduce(mesh)
        ring_wrht = wrht_steps(n, min(2 * WAVELENGTHS + 1, n), WAVELENGTHS)
        table.add_row(
            [f"{rows}x{cols}", n, torus.n_steps, mesh.n_steps, ring_wrht, ring_steps(n)]
        )
    print(f"=== WRHT step counts across topologies "
          f"(m={GROUP_SIZE}, w={WAVELENGTHS}) ===")
    print(table.render())
    print(
        "\nAll torus/mesh schedules above passed the exact-sum All-reduce"
        "\nverification. The row/column decomposition trades a few extra"
        "\nsteps against the ring version's single hierarchy, while Ring"
        "\nAll-reduce grows linearly in the node count."
    )

    # A 1-D ring with the same node budget, for reference.
    sched = build_schedule("wrht", 64, 64, n_wavelengths=WAVELENGTHS)
    verify_allreduce(sched)
    print(f"\n1-D ring WRHT on 64 nodes: {sched.n_steps} steps "
          f"(plan m={sched.meta['plan'].m}).")


if __name__ == "__main__":
    main()
