#!/usr/bin/env python
"""Optical vs electrical interconnects for All-reduce (the Fig 7 story).

Prices the same gradient synchronization four ways, exactly as the paper's
Sec 5.6 comparison: Ring and Recursive Doubling on a SimGrid-style fluid
fat-tree (32-port routers, 25 µs per hop, ECMP), and Ring and WRHT on the
WDM optical ring. Prints absolute times, the paper-style normalized bars,
and the average reductions next to the paper's reported 48.74% / 61.23% /
55.51%.

Run:  python examples/interconnect_comparison.py [--nodes 128 256 512 1024]
"""

import argparse

from repro.runner.experiments import run_fig7
from repro.util.tables import AsciiTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, nargs="+", default=[128, 256, 512, 1024])
    args = parser.parse_args()

    result = run_fig7(nodes=tuple(args.nodes))
    print(result.render())

    ref_wl, ref_algo, ref_x = result.meta["reference"]
    print(f"\nnormalized to {ref_algo}@{ref_wl}@N={ref_x} (paper Fig 7 bars):")
    norm_table = AsciiTable(
        ["workload", "algorithm"] + [f"N={n}" for n in result.x_values]
    )
    for wl in result.workloads:
        norm = result.normalized(ref_wl, ref_algo, ref_x)
        for algo in result.algorithms():
            norm_table.add_row([wl, algo] + [round(v, 2) for v in norm[(wl, algo)]])
    print(norm_table.render())

    summary = AsciiTable(["comparison", "measured (%)", "paper (%)"])
    summary.add_row(["O-Ring vs E-Ring", result.reduction_vs("E-Ring", "O-Ring"), 48.74])
    summary.add_row(["WRHT vs E-Ring", result.reduction_vs("E-Ring", "WRHT"), 61.23])
    summary.add_row(["WRHT vs RD", result.reduction_vs("RD", "WRHT"), 55.51])
    print("\naverage communication-time reductions:")
    print(summary.render())


if __name__ == "__main__":
    main()
