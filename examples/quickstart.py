#!/usr/bin/env python
"""Quickstart: plan, verify and price a WRHT All-reduce.

Walks the library's core loop in five steps:

1. plan WRHT for a 1024-node, 64-wavelength TeraRack-style ring
   (Lemma 1 group size, all-to-all shortcut, θ = 3 steps);
2. build the executable schedule and numerically verify the All-reduce
   postcondition (every node ends with the exact sum);
3. price the schedule on the optical substrate for a ResNet50 gradient;
4. compare against the Ring / H-Ring / BT baselines;
5. show the Table 1 step counts.

Run:  python examples/quickstart.py
"""

from repro import build_schedule, plan_wrht, run_table1, verify_allreduce
from repro.dnn.workload import workload_by_name
from repro.optical import OpticalRingNetwork, OpticalSystemConfig
from repro.util.tables import AsciiTable
from repro.util.units import format_seconds


def main() -> None:
    # 1. Plan.
    plan = plan_wrht(n_nodes=1024, n_wavelengths=64)
    print("=== WRHT plan ===")
    print(plan.describe())

    # 2. Build and verify (verification uses a small vector — correctness
    # is size-independent; pricing below uses the real gradient size).
    sched = build_schedule("wrht", 1024, 2048, plan=plan)
    verify_allreduce(sched)
    print("\nAll-reduce postcondition verified on all 1024 nodes "
          f"({sched.n_steps} steps).")

    # 3/4. Price a real gradient against the baselines.
    workload = workload_by_name("ResNet50")
    net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=1024, n_wavelengths=64))
    table = AsciiTable(["algorithm", "steps", "comm time", "peak wavelengths"])
    for algo in ("ring", "hring", "bt", "wrht"):
        kwargs = {"materialize": False}
        if algo == "wrht":
            kwargs["n_wavelengths"] = 64
        s = build_schedule(algo, 1024, workload.n_params, **kwargs)
        r = net.execute(s, bytes_per_elem=workload.bytes_per_param)
        table.add_row([algo.upper(), r.n_steps, format_seconds(r.total_time),
                       r.peak_wavelength])
    print(f"\n=== {workload.name} gradient "
          f"({workload.gradient_bytes / 1e6:.0f} MB) on the optical ring ===")
    print(table.render())

    # 5. Table 1.
    print("\n=== Table 1 step counts (N=1024, w=64) ===")
    for name, steps in run_table1().items():
        print(f"  {name:7s} {steps}")


if __name__ == "__main__":
    main()
