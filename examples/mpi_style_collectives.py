#!/usr/bin/env python
"""MPI-style collectives over the simulated optical ring.

The :mod:`repro.comm` facade mirrors mpi4py's lowercase collective
conventions, except everything runs in-process on exact numpy buffers and
each call reports what it would cost on an attached interconnect. This
example walks the full primitive set and shows the classic identity
``allreduce == reduce_scatter ∘ allgather`` both numerically and in cost.

Run:  python examples/mpi_style_collectives.py
"""

import numpy as np

from repro.comm import Communicator
from repro.optical import OpticalRingNetwork, OpticalSystemConfig
from repro.util.tables import AsciiTable
from repro.util.units import format_seconds

N_RANKS = 16
VECTOR = 4096


def main() -> None:
    network = OpticalRingNetwork(
        OpticalSystemConfig(n_nodes=N_RANKS, n_wavelengths=8)
    )
    comm = Communicator(
        N_RANKS, algorithm="wrht", network=network, n_wavelengths=8
    )
    rng = np.random.default_rng(0)
    data = rng.normal(size=(N_RANKS, VECTOR))

    table = AsciiTable(["collective", "steps", "payload", "est. time"])

    result, stats = comm.allreduce(data)
    assert np.allclose(result, np.tile(data.sum(0), (N_RANKS, 1)))
    table.add_row(["allreduce", stats.n_steps,
                   f"{stats.payload_bytes/1e3:.0f} KB",
                   format_seconds(stats.est_time)])

    total, stats = comm.reduce(data, root=3)
    assert np.allclose(total, data.sum(0))
    table.add_row(["reduce(root=3)", stats.n_steps,
                   f"{stats.payload_bytes/1e3:.0f} KB",
                   format_seconds(stats.est_time)])

    rows, stats = comm.broadcast(data[0], root=0)
    assert np.allclose(rows, np.tile(data[0], (N_RANKS, 1)))
    table.add_row(["broadcast", stats.n_steps,
                   f"{stats.payload_bytes/1e3:.0f} KB",
                   format_seconds(stats.est_time)])

    chunks, rs_stats = comm.reduce_scatter(data)
    table.add_row(["reduce_scatter", rs_stats.n_steps,
                   f"{rs_stats.payload_bytes/1e3:.0f} KB",
                   format_seconds(rs_stats.est_time)])

    full, ag_stats = comm.allgather(chunks)
    table.add_row(["allgather", ag_stats.n_steps,
                   f"{ag_stats.payload_bytes/1e3:.0f} KB",
                   format_seconds(ag_stats.est_time)])

    print(f"=== {N_RANKS}-rank collectives on the optical ring (WRHT) ===")
    print(table.render())

    # The identity: RS + AG computes exactly an allreduce.
    assert np.allclose(full, np.tile(data.sum(0), (N_RANKS, 1)))
    rs_ag = rs_stats.est_time + ag_stats.est_time
    _, ar_stats = comm.allreduce(data)
    print(
        f"\nreduce_scatter + allgather = allreduce (numerically exact);"
        f"\n  composed cost {format_seconds(rs_ag)} vs "
        f"WRHT allreduce {format_seconds(ar_stats.est_time)} — the paper's"
        f"\n  point: WRHT's {ar_stats.n_steps} steps beat the ring pair's "
        f"{rs_stats.n_steps + ag_stats.n_steps} on this fabric."
    )


if __name__ == "__main__":
    main()
