#!/usr/bin/env python
"""Wavelength failures and replanning on the optical ring.

Comb-laser lines die; micro-rings stick. This example injects wavelength
failures into a 256-node system running WRHT and shows the two response
modes:

1. **keep the old plan** — the RWA routes around the failed wavelengths,
   spilling transfers into extra reconfiguration rounds (correct but slow);
2. **replan against the surviving budget** — a smaller group size brings
   every step back to a single round, recovering most of the loss.

Run:  python examples/failure_recovery.py
"""

from repro.collectives import build_schedule
from repro.core.planner import plan_wrht
from repro.optical import OpticalRingNetwork, OpticalSystemConfig
from repro.util.tables import AsciiTable
from repro.util.units import format_seconds

N, W = 256, 16
ELEMS = 25_000_000  # ResNet50-sized gradient


def main() -> None:
    naive = build_schedule("wrht", N, ELEMS, n_wavelengths=W, materialize=False)
    table = AsciiTable(
        ["failed λ", "plan", "group m", "steps", "rounds", "comm time"]
    )
    for n_failed in (0, 2, 4, 8):
        failed = frozenset(range(n_failed))
        cfg = OpticalSystemConfig(
            n_nodes=N, n_wavelengths=W, failed_wavelengths=failed
        )
        net = OpticalRingNetwork(cfg)

        result = net.execute(naive)
        table.add_row(
            [n_failed, "keep old", naive.meta["plan"].m, result.n_steps,
             result.total_rounds, format_seconds(result.total_time)]
        )
        if n_failed:
            plan = plan_wrht(N, cfg.usable_wavelengths)
            replanned = build_schedule("wrht", N, ELEMS, plan=plan,
                                       materialize=False)
            result = net.execute(replanned)
            table.add_row(
                [n_failed, "replanned", plan.m, result.n_steps,
                 result.total_rounds, format_seconds(result.total_time)]
            )
    print(f"=== WRHT under wavelength failures (N={N}, w={W}) ===")
    print(table.render())
    print(
        "\nKeeping the stale plan pays extra reconfiguration rounds as the"
        "\nRWA squeezes around the dead wavelengths; replanning against the"
        "\nsurviving budget restores one round per step at a smaller group"
        "\nsize. Correctness is never at risk either way — the wavelength"
        "\nassignment is conflict-checked on every round."
    )


if __name__ == "__main__":
    main()
