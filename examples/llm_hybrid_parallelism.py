#!/usr/bin/env python
"""GPT-3 on the optical ring with hybrid parallelism (Sec 6.2).

The paper's discussion argues WRHT remains useful for LLMs that cannot
train data-parallel. This example quantifies the whole argument:

1. memory: a GPT-3 replica needs terabytes of optimizer state — pure data
   parallelism is impossible at any scale;
2. a (tp, pp, dp) grid over the ring makes it fit;
3. the per-training-step communication decomposes into tensor-parallel,
   pipeline and data-parallel parts, each priced as real grouped schedules
   on the optical substrate — including the finding that small DP groups
   with huge gradient shards prefer Ring over WRHT.

Run:  python examples/llm_hybrid_parallelism.py
"""

from repro.dnn.models import gpt3
from repro.dnn.parallelism import HybridParallelComm, MemoryModel, ParallelismPlan
from repro.optical import OpticalRingNetwork, OpticalSystemConfig
from repro.util.tables import AsciiTable

N_RING = 256


def main() -> None:
    model = gpt3()
    memory = MemoryModel()
    print(f"=== {model.name}: {model.param_count/1e9:.0f}B parameters ===\n")

    mem_table = AsciiTable(["plan (N=1024)", "per-rank state (GB)", "fits 80 GB GPU"])
    for label, plan in (
        ("dp=1024 (pure data-parallel)", ParallelismPlan(1024, dp=1024)),
        ("tp=8, pp=16, dp=8", ParallelismPlan(1024, tp=8, pp=16, dp=8)),
        ("tp=8, pp=8,  dp=16", ParallelismPlan(1024, tp=8, pp=8, dp=16)),
    ):
        gb = memory.per_rank_bytes(model, plan) / 1e9
        mem_table.add_row([label, gb, "yes" if memory.fits(model, plan) else "NO"])
    print(mem_table.render())

    plan = ParallelismPlan(N_RING, tp=8, pp=8, dp=4)
    network = OpticalRingNetwork(
        OpticalSystemConfig(n_nodes=N_RING, n_wavelengths=64)
    )
    print(f"\n=== per-step communication on a {N_RING}-node ring "
          f"(tp=8, pp=8, dp=4) ===")
    cost_table = AsciiTable(
        ["DP collective", "TP (ms)", "PP (ms)", "DP (ms)", "total (ms)"]
    )
    for dp_algo in ("ring", "wrht"):
        kwargs = {"n_wavelengths": 64} if dp_algo == "wrht" else {}
        comm = HybridParallelComm(model, plan, network, dp_algorithm=dp_algo, **kwargs)
        cost = comm.step_cost(micro_batch=1, n_micro_batches=4)
        cost_table.add_row(
            [dp_algo.upper(), cost.tp_time * 1e3, cost.pp_time * 1e3,
             cost.dp_time * 1e3, cost.total * 1e3]
        )
    print(cost_table.render())
    print(
        "\nNote the inversion: with only dp=4 replicas moving a ~1.3 GB"
        "\ngradient shard each, Ring's chunked steps beat WRHT's full-shard"
        "\nsteps — the same payload-vs-steps trade-off as the paper's small-"
        "\nwavelength regime (Fig 5b), now driven by group size. WRHT's win"
        "\nis the wide-group regime of the main experiments."
    )


if __name__ == "__main__":
    main()
