"""Extension bench — sparse (top-k) synchronization vs dense All-reduce.

The related-work direction the paper cites ([12]): how much communication
time does top-k sparsification save on the optical ring, and what does it
cost in convergence? Prices the sparse all-gather against dense WRHT and
Ring for the ResNet50 gradient across compression ratios, then shows a
small end-to-end training comparison (loss after a fixed budget).
"""

import numpy as np

from repro.comm.primitives import build_allgather_schedule
from repro.collectives.registry import build_schedule
from repro.dnn.autograd import MLP
from repro.dnn.compression import CompressedDataParallelTrainer
from repro.dnn.datasets import SyntheticClassification
from repro.dnn.training import DataParallelTrainer
from repro.dnn.workload import workload_by_name
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.util.tables import AsciiTable

N = 64
RATIOS = (0.001, 0.01, 0.1)


def _measure():
    workload = workload_by_name("ResNet50")
    net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=N, n_wavelengths=64))
    timing = {}
    dense_wrht = build_schedule(
        "wrht", N, workload.n_params, n_wavelengths=64, materialize=False
    )
    timing["dense WRHT"] = net.execute(
        dense_wrht, bytes_per_elem=workload.bytes_per_param
    ).total_time
    dense_ring = build_schedule("ring", N, workload.n_params, materialize=False)
    timing["dense Ring"] = net.execute(
        dense_ring, bytes_per_elem=workload.bytes_per_param
    ).total_time
    for ratio in RATIOS:
        k = max(1, int(np.ceil(ratio * workload.n_params)))
        sched = build_allgather_schedule(N, 2 * k * N)
        timing[f"top-k {ratio:g}"] = net.execute(
            sched, bytes_per_elem=workload.bytes_per_param
        ).total_time

    # Convergence at a fixed iteration budget (small model, real training).
    ds = SyntheticClassification(n_features=24, n_classes=4, noise_scale=0.4, seed=2)
    batches = [ds.batch(64) for _ in range(30)]
    factory = lambda: MLP.of_widths([24, 16, 4], seed=4)  # noqa: E731
    losses = {}
    dense = DataParallelTrainer(factory, 8, algorithm="wrht", n_wavelengths=8, lr=0.1)
    losses["dense"] = dense.train(batches).losses[-1]
    for ratio in (0.05, 0.2):
        sparse = CompressedDataParallelTrainer(
            factory, 8, compression_ratio=ratio, lr=0.1
        )
        losses[f"top-k {ratio:g}"] = sparse.train(batches).losses[-1]
    return timing, losses


def test_sparse_vs_dense(once):
    timing, losses = once(_measure)
    table = AsciiTable(["synchronization", "comm time (ms)"])
    for label, t in timing.items():
        table.add_row([label, t * 1e3])
    print()
    print(f"ResNet50 gradient sync on a {N}-node optical ring:")
    print(table.render())

    loss_table = AsciiTable(["training", "final loss (30 iters)"])
    for label, loss in losses.items():
        loss_table.add_row([label, loss])
    print()
    print(loss_table.render())

    # Aggressive sparsification beats even WRHT on pure communication time.
    assert timing["top-k 0.001"] < timing["dense WRHT"]
    assert timing["top-k 0.001"] < timing["dense Ring"]
    # Communication time grows with the ratio.
    assert timing["top-k 0.001"] < timing["top-k 0.01"] < timing["top-k 0.1"]
    # Error feedback keeps sparse training usable at the fixed budget.
    assert losses["top-k 0.2"] < 3 * max(losses["dense"], 1e-3)
