"""Shared benchmark helpers.

Every bench regenerates one paper table/figure, prints the rows/series the
paper reports (run ``pytest benchmarks/ --benchmark-only -s`` to see them),
asserts the paper's qualitative claims, and times the regeneration with
pytest-benchmark. EXPERIMENTS.md records the printed numbers against the
paper's.
"""

from __future__ import annotations

import pytest

from repro.runner.report import ExperimentResult
from repro.util.tables import AsciiTable


def print_experiment(result: ExperimentResult, reductions: list[tuple[str, str, float]]) -> None:
    """Render an experiment plus its paper-comparison summary."""
    print()
    print(result.render())
    summary = AsciiTable(["comparison", "measured (%)", "paper (%)"])
    for baseline, target, paper_value in reductions:
        summary.add_row(
            [f"{target} vs {baseline}", result.reduction_vs(baseline, target), paper_value]
        )
    print()
    print(summary.render())


@pytest.fixture
def once(benchmark):
    """Benchmark a callable exactly once (experiments are deterministic and
    some simulate minutes of fabric time; statistical rounds add nothing)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
