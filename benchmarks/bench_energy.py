"""Extension bench — energy per All-reduce (Sec 1's power claim).

Prices the energy of one gradient All-reduce for every evaluation workload
on both substrates: E-Ring and RD on the electrical fat-tree, O-Ring and
WRHT on the optical ring (N=256). Asserts the paper's qualitative power
claim — optical spends fewer picojoules per payload bit — and shows the
reconfiguration-energy advantage WRHT's step count brings.
"""

from repro.analysis.energy import electrical_allreduce_energy, optical_allreduce_energy
from repro.collectives.registry import build_schedule
from repro.dnn.workload import PAPER_WORKLOADS
from repro.electrical.config import ElectricalSystemConfig
from repro.optical.config import OpticalSystemConfig
from repro.util.tables import AsciiTable

N = 256


def _measure():
    optical_cfg = OpticalSystemConfig(n_nodes=N, n_wavelengths=64)
    electrical_cfg = ElectricalSystemConfig(n_nodes=N)
    rows = []
    for wl in PAPER_WORKLOADS:
        entry = {"workload": wl.name}
        for label, algo, flavor in (
            ("E-Ring", "ring", "electrical"),
            ("E-RD", "rd", "electrical"),
            ("O-Ring", "ring", "optical"),
            ("WRHT", "wrht", "optical"),
        ):
            kwargs = {"materialize": False}
            if algo == "wrht":
                kwargs["n_wavelengths"] = 64
            sched = build_schedule(algo, N, wl.n_params, **kwargs)
            if flavor == "electrical":
                energy = electrical_allreduce_energy(
                    sched, electrical_cfg, bytes_per_elem=wl.bytes_per_param
                )
            else:
                energy = optical_allreduce_energy(
                    sched, optical_cfg, bytes_per_elem=wl.bytes_per_param
                )
            entry[label] = energy
        rows.append(entry)
    return rows


def test_energy_per_allreduce(once):
    rows = once(_measure)
    table = AsciiTable(
        ["workload", "E-Ring (J)", "E-RD (J)", "O-Ring (J)", "WRHT (J)",
         "O-Ring pJ/bit", "E-Ring pJ/bit"]
    )
    for entry in rows:
        table.add_row(
            [entry["workload"],
             entry["E-Ring"].total, entry["E-RD"].total,
             entry["O-Ring"].total, entry["WRHT"].total,
             entry["O-Ring"].pj_per_bit, entry["E-Ring"].pj_per_bit]
        )
    print()
    print(f"Energy per gradient All-reduce, N={N}:")
    print(table.render())

    for entry in rows:
        # The paper's power claim: optical cheaper per payload bit.
        assert entry["O-Ring"].pj_per_bit < entry["E-Ring"].pj_per_bit
        # WRHT's 3-4 steps vs Ring's 510: far less reconfiguration energy.
        assert entry["WRHT"].components["reconfig"] < (
            entry["O-Ring"].components["reconfig"] / 50
        )
