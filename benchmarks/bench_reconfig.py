"""Reconfiguration-overlap bake-off: tuning exposure with and without overlap.

One deterministic grid, written to ``BENCH_reconfig.json`` at the repo root
and gated by ``scripts/bench_gate.py`` via
:func:`repro.obs.benchgate.compare_reconfig`:

- **Optical rows** price each (algorithm, N, payload) cell three ways under
  a 25 µs MRR tuning model (:mod:`repro.optical.reconfig`): tuning charged
  serially before every round (``no_overlap_s``), free-claim tuning racing
  the previous round's transmission (``overlap_s``), and the
  reconfigure-vs-hold estimator's pick (``chosen_s`` with its ``decision``
  label; ``hold_s`` is ``None`` when the wavelength partition is
  infeasible). Every chosen plan is statically verified (PLAN000–PLAN008)
  before its number is reported.
- **Analytic rows** run the closed-form recurrence
  (:func:`repro.core.timing.reconfig_exposed_time`) with and without
  overlap — the claim-free counterpart of the optical exposure.
- **Electrical rows** pin the zero-reconfiguration-tax baseline: the
  packet-switched fat-tree pays no tuning, so ``overlap_s`` equals
  ``no_overlap_s`` by construction.

The pinned per-push grid stays at N=8 (w=32); ``WRHT_BENCH_FULL=1`` (the
scheduled full-grid CI lane) extends it to N=16 (w=64).
"""

import json
import os
from pathlib import Path

from repro.backend.analytic import AnalyticBackend
from repro.backend.electrical import ElectricalBackend
from repro.backend.optical import OpticalBackend
from repro.check.context import optical_context
from repro.check.engine import verify_plan
from repro.check.findings import errors
from repro.collectives import build_schedule
from repro.core.timing import CostModel
from repro.electrical.config import ElectricalSystemConfig
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.optical.reconfig import ReconfigModel, plan_total_time
from repro.util.tables import AsciiTable

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_reconfig.json"

#: SWOT-scale thermal MRR settling time (seconds).
T_TUNE = 25e-6

ALGORITHMS = ("swing", "rd", "ring")

#: (n_nodes, n_wavelengths) cells; the per-push gate pins the small cell,
#: the scheduled full-grid lane (WRHT_BENCH_FULL=1) adds the larger one.
PINNED_GRID = ((8, 32),)
FULL_GRID = ((8, 32), (16, 64))

#: Small payloads expose tuning (reconfigure wins); large payloads give the
#: hold plan a transmission window wide enough to hide all tuning behind.
PAYLOAD_ELEMS = (2_000, 1_000_000)

BYTES_PER_ELEM = 4.0

COST_MODEL = CostModel(line_rate=40e9 / 8, step_overhead=25e-6)


def _grid() -> tuple[tuple[int, int], ...]:
    return FULL_GRID if os.environ.get("WRHT_BENCH_FULL") == "1" else PINNED_GRID


def _run_reconfig() -> list[dict]:
    """One row per (algorithm, backend, N, payload): tuning exposures."""
    rows = []
    for n, w in _grid():
        cfg = OpticalSystemConfig(n_nodes=n, n_wavelengths=w, t_tune=T_TUNE)
        serial_net = OpticalRingNetwork(cfg, overlap=False)
        for elems in PAYLOAD_ELEMS:
            for algo in ALGORITHMS:
                schedule = build_schedule(algo, n, elems)
                no_overlap_s = plan_total_time(
                    serial_net.lower(schedule, BYTES_PER_ELEM),
                    cfg.mrr_reconfig_delay,
                )
                backend = OpticalBackend(cfg)
                chosen = backend.lower(schedule, bytes_per_elem=BYTES_PER_ELEM)
                decision = chosen.meta["reconfig"]["decision"]
                context = optical_context(
                    backend, schedule, chosen, bytes_per_elem=BYTES_PER_ELEM
                )
                n_errors = len(errors(verify_plan(context=context)))
                rows.append(
                    {
                        "algorithm": algo,
                        "backend": "optical",
                        "n_nodes": n,
                        "elems": elems,
                        "t_tune_us": T_TUNE * 1e6,
                        "no_overlap_s": no_overlap_s,
                        "overlap_s": decision["reconfigure_s"],
                        "hold_s": decision["hold_s"],
                        "decision": decision["chosen"],
                        "chosen_s": plan_total_time(
                            chosen, cfg.mrr_reconfig_delay
                        ),
                        "n_errors": n_errors,
                    }
                )
        for elems in PAYLOAD_ELEMS:
            for algo in ALGORITHMS:
                # Closed forms never materialize steps, so these cells are
                # cheap at any N.
                schedule = build_schedule(algo, n, elems, materialize=False)
                times = {}
                for label, overlap in (("overlap_s", True), ("no_overlap_s", False)):
                    backend = AnalyticBackend(
                        COST_MODEL, w=w,
                        reconfig=ReconfigModel(t_tune=T_TUNE), overlap=overlap,
                    )
                    times[label] = backend.run(
                        schedule, bytes_per_elem=BYTES_PER_ELEM
                    ).total_time
                rows.append(
                    {
                        "algorithm": algo,
                        "backend": "analytic",
                        "n_nodes": n,
                        "elems": elems,
                        "t_tune_us": T_TUNE * 1e6,
                        "no_overlap_s": times["no_overlap_s"],
                        "overlap_s": times["overlap_s"],
                        "hold_s": None,
                        "decision": "n/a",
                        "chosen_s": times["overlap_s"],
                        "n_errors": 0,
                    }
                )
        electrical = ElectricalBackend(
            ElectricalSystemConfig(n_nodes=n),
            reconfig=ReconfigModel(t_tune=T_TUNE),
        )
        for elems in PAYLOAD_ELEMS:
            for algo in ALGORITHMS:
                schedule = build_schedule(algo, n, elems)
                total = electrical.run(
                    schedule, bytes_per_elem=BYTES_PER_ELEM
                ).total_time
                rows.append(
                    {
                        "algorithm": algo,
                        "backend": "electrical",
                        "n_nodes": n,
                        "elems": elems,
                        "t_tune_us": T_TUNE * 1e6,
                        "no_overlap_s": total,
                        "overlap_s": total,
                        "hold_s": None,
                        "decision": "n/a",
                        "chosen_s": total,
                        "n_errors": 0,
                    }
                )
    return rows


def test_reconfig_overlap(once):
    rows = once(_run_reconfig)

    table = AsciiTable(
        ["backend", "N", "elems", "algorithm", "serial (ms)", "overlap (ms)",
         "hold (ms)", "decision"]
    )
    for row in rows:
        table.add_row([
            row["backend"], row["n_nodes"], row["elems"], row["algorithm"],
            f"{row['no_overlap_s'] * 1e3:.4f}",
            f"{row['overlap_s'] * 1e3:.4f}",
            "-" if row["hold_s"] is None else f"{row['hold_s'] * 1e3:.4f}",
            row["decision"],
        ])
    print()
    print(f"reconfiguration overlap grid (t_tune={T_TUNE * 1e6:.0f}us):")
    print(table.render())

    optical = [r for r in rows if r["backend"] == "optical"]
    analytic = [r for r in rows if r["backend"] == "analytic"]
    electrical = [r for r in rows if r["backend"] == "electrical"]

    # Every chosen optical plan must verify clean (PLAN000-PLAN008).
    assert all(r["n_errors"] == 0 for r in rows)
    # Overlap must strictly beat serial tuning somewhere, and never lose.
    assert any(r["overlap_s"] < r["no_overlap_s"] for r in optical)
    assert all(r["overlap_s"] <= r["no_overlap_s"] for r in optical + analytic)
    # Both sides of the estimator's quadrant must be real: small payloads
    # can't hide tuning (reconfigure), large ones can (hold).
    assert any(r["decision"] == "reconfigure" for r in optical)
    assert any(r["decision"] == "hold" for r in optical)
    # The chosen plan is never slower than the plain reconfiguring plan.
    assert all(r["chosen_s"] <= r["overlap_s"] for r in optical)
    # Packet switching pays no reconfiguration tax at all.
    assert all(r["overlap_s"] == r["no_overlap_s"] for r in electrical)

    OUT_PATH.write_text(json.dumps({"reconfig": rows}, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
