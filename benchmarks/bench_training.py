"""End-to-end bench — data-parallel training with priced gradient sync.

16 simulated workers train the same model with each collective; the bench
verifies all five converge to bit-identical weights (they compute the same
All-reduce) and prices one gradient synchronization per algorithm on the
optical ring — the communication cost the paper's motivation section is
about, attached to an actual training loop.
"""

import numpy as np

from repro.dnn.autograd import MLP
from repro.dnn.datasets import SyntheticClassification
from repro.dnn.training import DataParallelTrainer
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.util.tables import AsciiTable

N_WORKERS = 16
ALGORITHMS = ("ring", "bt", "rd", "hring", "wrht")


def _train_all():
    ds = SyntheticClassification(n_features=32, n_classes=5, seed=3)
    batches = [ds.batch(64) for _ in range(10)]
    net = OpticalRingNetwork(
        OpticalSystemConfig(n_nodes=N_WORKERS, n_wavelengths=8)
    )
    out = {}
    for algo in ALGORITHMS:
        kwargs = {"n_wavelengths": 8} if algo == "wrht" else {}
        trainer = DataParallelTrainer(
            lambda: MLP.of_widths([32, 24, 5], seed=1),
            N_WORKERS, algorithm=algo, lr=0.05, **kwargs,
        )
        report = trainer.train(
            batches, comm_pricer=lambda t: net.execute(t.schedule).total_time
        )
        out[algo] = (
            report.losses[-1],
            trainer.schedule.n_steps,
            report.comm_time_per_iter,
            trainer.consensus_state(),
        )
    return out


def test_training_with_comm_pricing(once):
    results = once(_train_all)
    table = AsciiTable(
        ["algorithm", "final loss", "sync steps", "sync time (µs)"]
    )
    for algo, (loss, steps, comm, _) in results.items():
        table.add_row([algo.upper(), loss, steps, comm * 1e6])
    print()
    print(f"{N_WORKERS}-worker data-parallel training, per-iteration "
          "gradient sync priced on an optical ring (w=8):")
    print(table.render())

    # All collectives produce identical weights (same All-reduce).
    states = [state for (_, _, _, state) in results.values()]
    for state in states[1:]:
        assert np.allclose(state, states[0], rtol=1e-9, atol=1e-12)
    # WRHT's sync is the cheapest.
    comms = {algo: comm for algo, (_, _, comm, _) in results.items()}
    assert comms["wrht"] == min(comms.values())
    assert comms["wrht"] < comms["ring"] / 3
