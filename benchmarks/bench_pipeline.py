"""Extension bench — pipelined (bucketed) WRHT.

Quantifies the library's beyond-paper extension: splitting the gradient
into B buckets and pipelining them through the WRHT hierarchy. Prints the
bucket sweep for each workload (group size m=33 so the steady-state
wavelength demand fits w=64 and the optical executor realizes the model
exactly) against plain WRHT at the paper's optimal m=129.
"""

from repro.collectives.registry import build_schedule
from repro.core.pipeline import (
    PipelinedPlan,
    build_pipelined_wrht_schedule,
    optimal_bucket_count,
    pipelined_wrht_time,
)
from repro.core.planner import plan_wrht
from repro.dnn.workload import PAPER_WORKLOADS
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.util.tables import AsciiTable

N, W = 1024, 64
PIPE_M = 33  # keeps steady-state demand (2 levels x 16λ) within w=64


def _measure():
    cfg = OpticalSystemConfig(n_nodes=N, n_wavelengths=W)
    net = OpticalRingNetwork(cfg)
    cost = cfg.cost_model()
    plan = plan_wrht(N, W, m=PIPE_M)
    rows = []
    for wl in PAPER_WORKLOADS:
        plain_sched = build_schedule("wrht", N, wl.n_params, n_wavelengths=W,
                                     materialize=False)
        plain = net.execute(plain_sched, bytes_per_elem=wl.bytes_per_param)
        best_b = optimal_bucket_count(plan, float(wl.gradient_bytes), cost)
        pipe_sched = build_pipelined_wrht_schedule(
            N, wl.n_params, n_buckets=best_b, plan=plan
        )
        pipe = net.execute(pipe_sched, bytes_per_elem=wl.bytes_per_param)
        model = pipelined_wrht_time(
            PipelinedPlan(plan, best_b), float(wl.gradient_bytes), cost
        )
        rows.append((wl.name, plain.total_time, best_b, pipe.total_time, model,
                     pipe.total_rounds == pipe.n_steps))
    return rows


def test_pipelined_wrht(once):
    rows = once(_measure)
    table = AsciiTable(
        ["workload", "plain WRHT (ms)", "best B", "pipelined (ms)",
         "model (ms)", "speedup"]
    )
    for name, plain, b, pipe, model, fits in rows:
        table.add_row([name, plain * 1e3, b, pipe * 1e3, model * 1e3,
                       f"{plain / pipe:.2f}x"])
        assert fits, f"{name}: pipelined schedule spilled its wavelength budget"
        # The executor must realize the pipelined model (to within the
        # ceil-vs-exact bucket rounding, one element per transfer)...
        assert abs(pipe - model) <= 1e-6 * model
        # ...and pipelining must beat plain WRHT for every workload.
        assert pipe < plain
    print()
    print(f"Pipelined WRHT (m={PIPE_M}) vs plain WRHT (m=129), N={N}, w={W}:")
    print(table.render())
