"""Extension bench — heterogeneous fleets (the paper's named future work).

A 64-worker data-parallel fleet where a fraction of devices run at reduced
speed. Prices the naive equal-shard policy against speed-proportional
sharding (both with WRHT gradient sync on the optical ring) and shows the
straggler penalty, the recovery from balancing, and how the communication
fraction — the quantity the paper optimizes — shifts once compute is
balanced.
"""

from repro.core.timing import CostModel
from repro.dnn.heterogeneity import HeterogeneousIteration
from repro.dnn.iteration import comm_backend_from_analytical
from repro.dnn.profile import profile_model
from repro.optical.config import OpticalSystemConfig
from repro.util.tables import AsciiTable

N_WORKERS = 64
BATCH = 1024
SLOW_SPEED = 0.4

SCENARIOS = {
    "homogeneous": [1.0] * N_WORKERS,
    "1 straggler": [1.0] * (N_WORKERS - 1) + [SLOW_SPEED],
    "25% slow": [1.0] * 48 + [SLOW_SPEED] * 16,
    "50% slow": [1.0] * 32 + [SLOW_SPEED] * 32,
}


def _measure():
    profile = profile_model("ResNet50")
    cost = OpticalSystemConfig(
        n_nodes=N_WORKERS, n_wavelengths=64
    ).cost_model()
    comm = comm_backend_from_analytical("WRHT", N_WORKERS, cost, w=64)
    rows = []
    for label, speeds in SCENARIOS.items():
        fleet = HeterogeneousIteration(profile, speeds, comm)
        naive = fleet.equal_shards(BATCH)
        balanced = fleet.balanced_shards(BATCH)
        rows.append((label, naive, balanced, fleet.balancing_speedup(BATCH)))
    return rows


def test_heterogeneous_fleets(once):
    rows = once(_measure)
    table = AsciiTable(
        ["fleet", "naive iter (ms)", "balanced iter (ms)", "speedup",
         "naive comm %", "balanced comm %"]
    )
    for label, naive, balanced, speedup in rows:
        table.add_row(
            [label, naive.total * 1e3, balanced.total * 1e3,
             f"{speedup:.2f}x", naive.comm_fraction * 100,
             balanced.comm_fraction * 100]
        )
    print()
    print(f"{N_WORKERS}-worker fleets, ResNet50, batch {BATCH}, "
          "WRHT gradient sync:")
    print(table.render())

    results = {label: (n, b, s) for label, n, b, s in rows}
    # Homogeneous fleets gain nothing from balancing.
    assert results["homogeneous"][2] == 1.0
    # One straggler stalls the whole naive fleet by ~1/SLOW_SPEED on compute.
    homo = results["homogeneous"][0]
    one = results["1 straggler"][0]
    assert one.compute > 2.0 * homo.compute
    # Balancing recovers: a single straggler barely hurts the balanced fleet.
    assert results["1 straggler"][1].total < 1.1 * results["homogeneous"][1].total
    # Speedup grows with straggler severity up to the 50% point.
    assert results["1 straggler"][2] > 1.5
    assert results["25% slow"][2] > 1.2
