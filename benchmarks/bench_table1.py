"""Table 1 — communication step comparison (N=1024, w=64).

Regenerates every row of Table 1 and checks the paper's exact numbers:
Ring 2046, H-Ring 417 (m=5), BT 20, WRHT 3 (m=129).
"""

from repro.runner.experiments import run_table1
from repro.util.tables import AsciiTable

PAPER_STEPS = {"Ring": 2046, "H-Ring": 417, "BT": 20, "WRHT": 3}


def test_table1_steps(once):
    counts = once(run_table1, 1024, 64)
    table = AsciiTable(["algorithm", "steps (measured)", "steps (paper)"])
    for name, paper in PAPER_STEPS.items():
        table.add_row([name, counts[name], paper])
        assert counts[name] == paper, name
    print()
    print(table.render())


def test_table1_scaling_rows(once):
    """Step counts across cluster sizes (the Table 1 formulas exercised at
    every Fig 6/7 scale)."""

    def build():
        return {n: run_table1(n, 64) for n in (128, 256, 512, 1024, 2048, 4096)}

    rows = once(build)
    table = AsciiTable(["N", "Ring", "H-Ring", "BT", "RD", "WRHT"])
    for n, counts in rows.items():
        table.add_row([n, counts["Ring"], counts["H-Ring"], counts["BT"],
                       counts["RD"], counts["WRHT"]])
    print()
    print(table.render())
    # WRHT stays at 3-4 steps while Ring grows linearly.
    assert rows[4096]["WRHT"] <= 4
    assert rows[4096]["Ring"] == 8190
