"""Figure 5 — four algorithms under 4/16/64/256 wavelengths (N=1024).

Paper claims (Sec 5.4): WRHT's time falls with w then flattens; Ring and BT
are wavelength-invariant; H-Ring dips slightly after w=4; at w=4 Ring
beats WRHT on the big models (BEiT/VGG16). Reported average reductions:
WRHT vs Ring 13.74%, vs H-Ring 9.29%, vs BT 75%.
"""

from benchmarks.conftest import print_experiment
from repro.runner.experiments import run_fig5

PAPER = [("Ring", "WRHT", 13.74), ("H-Ring", "WRHT", 9.29), ("BT", "WRHT", 75.0)]


def test_fig5_analytical(once):
    result = once(run_fig5, mode="analytical")
    print_experiment(result, PAPER)

    for wl in result.workloads:
        wrht = result.series[(wl, "WRHT")]
        assert wrht[0] >= wrht[1] >= wrht[2] >= wrht[3]
        assert wrht[2] == wrht[3]  # flattens at w >= 64
        assert len(set(result.series[(wl, "Ring")])) == 1
        assert len(set(result.series[(wl, "BT")])) == 1
        hring = result.series[(wl, "H-Ring")]
        assert hring[0] > hring[1] == hring[2] == hring[3]
    # Fig 5(b) observation.
    for big in ("BEiT-L", "VGG16"):
        assert result.cell(big, "WRHT", 4) > result.cell(big, "Ring", 4)
        assert result.cell(big, "WRHT", 4) > result.cell(big, "H-Ring", 4)
    # Average reductions: same sign and order as the paper.
    assert result.reduction_vs("BT") > 60
    assert 0 < result.reduction_vs("H-Ring")
    assert 0 < result.reduction_vs("Ring")


def test_fig5_simulated(once):
    result = once(run_fig5, mode="simulated")
    print_experiment(result, PAPER)
    for wl in result.workloads:
        assert result.cell(wl, "WRHT", 256) <= result.cell(wl, "WRHT", 4)
