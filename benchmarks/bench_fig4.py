"""Figure 4 — WRHT with different numbers of grouped nodes.

1024-node optical ring, WRHT_0..WRHT_3 at m = 17/33/65/129, all four DNN
workloads. The paper's claims (Sec 5.3): communication time decreases with
m and then flattens; WRHT_2/WRHT_3 land at roughly half of WRHT_0; the
normalized bars are workload-independent (circuit switching, no congestion).
"""

from benchmarks.conftest import print_experiment
from repro.runner.experiments import run_fig4
from repro.util.tables import AsciiTable


def test_fig4_analytical(once):
    result = once(run_fig4, mode="analytical")
    print_experiment(result, [])
    norm_table = AsciiTable(["workload"] + [f"m={m}" for m in result.x_values])
    for wl in result.workloads:
        norm = result.normalized(wl, "WRHT", result.x_values[-1])
        norm_table.add_row([wl] + [round(v, 3) for v in norm[(wl, "WRHT")]])
    print()
    print("normalized to WRHT_3 per workload (paper Fig 4 bars):")
    print(norm_table.render())

    for wl in result.workloads:
        times = result.series[(wl, "WRHT")]
        assert times == sorted(times, reverse=True)  # decreasing...
        assert times[-2] == times[-1]  # ...then flat
        # WRHT_0 vs WRHT_3 ratio ~5/3 (θ=5 vs θ=3); paper eyeballs "half".
        assert 1.5 <= times[0] / times[-1] <= 2.1
    # Workload independence of the normalized shape.
    shapes = {
        tuple(round(v / result.series[(wl, "WRHT")][-1], 6) for v in result.series[(wl, "WRHT")])
        for wl in result.workloads
    }
    assert len(shapes) == 1


def test_fig4_simulated(once):
    result = once(run_fig4, mode="simulated")
    print_experiment(result, [])
    for wl in result.workloads:
        times = result.series[(wl, "WRHT")]
        assert times == sorted(times, reverse=True)
