"""Extension bench — the full baseline zoo on the optical ring.

The paper compares WRHT against Ring, H-Ring and BT; this bench adds the
library's extra baselines — NCCL's double binary tree (DBTree, the
paper's related-work [25]), full-vector Recursive Doubling and
Rabenseifner halving-doubling — for every evaluation workload at the
paper's scale. Shows where each algorithm's regime lies and that WRHT
stays the winner against the stronger tree baseline too.
"""

from repro.collectives.registry import build_schedule
from repro.dnn.workload import PAPER_WORKLOADS
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.util.tables import AsciiTable

N, W = 1024, 64

ALGOS = [
    ("Ring", "ring", {}),
    ("H-Ring", "hring", {"m": 5}),
    ("BT", "bt", {}),
    ("DBTree", "dbtree", {}),
    ("RD", "rd", {}),
    ("RD-halving", "rd", {"variant": "halving_doubling"}),
    ("WRHT", "wrht", {"n_wavelengths": W}),
]


def _measure():
    net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=N, n_wavelengths=W))
    results = {}
    for wl in PAPER_WORKLOADS:
        row = {}
        for label, algo, kwargs in ALGOS:
            sched = build_schedule(
                algo, N, wl.n_params, materialize=False, **kwargs
            )
            row[label] = net.execute(
                sched, bytes_per_elem=wl.bytes_per_param
            ).total_time
        results[wl.name] = row
    return results


def test_baseline_zoo(once):
    results = once(_measure)
    table = AsciiTable(["workload"] + [label for label, _, _ in ALGOS])
    for workload, row in results.items():
        table.add_row([workload] + [row[label] * 1e3 for label, _, _ in ALGOS])
    print()
    print(f"Communication time (ms) on the {N}-node optical ring, w={W}:")
    print(table.render())

    for workload, row in results.items():
        # WRHT wins against every baseline, including the extra ones.
        assert row["WRHT"] == min(row.values()), workload
        # DBTree halves BT's payload-dominated time on the big models.
        assert row["DBTree"] < 0.6 * row["BT"], workload
        # Rabenseifner beats full-vector RD everywhere (2d vs d·log2N).
        assert row["RD-halving"] < row["RD"], workload
    # Regime check: DBTree (tree family's best) still loses to the
    # chunked ring algorithms on the largest gradient...
    assert results["BEiT-L"]["DBTree"] > results["BEiT-L"]["Ring"]
    # ...but beats Ring on the latency-sensitive smallest one.
    assert results["ResNet50"]["DBTree"] < results["ResNet50"]["Ring"]
