"""Incremental repair vs full recolor — honest before/after.

One measurement, written to ``BENCH_repair.json`` at the repo root: a
single-fault delta (``DeadWavelength(0)``) spliced into a solved dense
all-to-all step at N ∈ {64, 256, 1024}, timed both ways:

- **full recolor** — ``plan_rounds`` from scratch against the degraded
  budget (what every FaultEvent paid before the repair engine);
- **incremental repair** — ``repair_rounds`` recoloring only the
  transfers whose claims ride the dead wavelength, everything else pinned.

The repaired rounds are exhaustively validated (``validate_rounds``) and
the repair path is asserted fallback-free before any number is reported;
the N=1024 cell asserts the ≥10× floor the gate pins.

The representative count is held at k=16 across ring sizes so the step
needs ~⌈k²/8⌉ = 32 of the 64 wavelengths: the instance has genuine
headroom, which is the regime repair targets (a saturated instance
cascades and correctly falls back to the full recolor — covered by the
adversarial tests, not benchmarked here).
"""

import json
import time
from pathlib import Path

from repro.collectives.alltoall import build_alltoall_step
from repro.obs.metrics import MetricsRegistry
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.optical.repair import (
    RwaContext,
    capture_solution,
    repair_rounds,
    route_masks,
    validate_rounds,
)
from repro.optical.rwa import plan_rounds
from repro.util.tables import AsciiTable

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_repair.json"

NODES = (64, 256, 1024)
K = 16
W = 64
DEAD = frozenset({0})
REPEATS = 5


def _instance(n):
    """(routes, healthy solution) for the dense step on an N-node ring."""
    net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=n, n_wavelengths=W))
    step = build_alltoall_step([i * (n // K) for i in range(K)], 100)
    routes = net._route_step(step)
    ctx = RwaContext(n_segments=n, n_wavelengths=W)
    solution = capture_solution(routes, plan_rounds(routes, n, W), ctx)
    return routes, solution


def _time_single_fault(n):
    """One BENCH_repair row: best-of-``REPEATS`` for both paths."""
    routes, solution = _instance(n)
    degraded = RwaContext(n_segments=n, n_wavelengths=W, blocked=DEAD)

    full_s = min(
        _timed(lambda: plan_rounds(routes, n, W, blocked=DEAD))
        for _ in range(REPEATS)
    )
    metrics = MetricsRegistry(enabled=True)
    repair_s = min(
        _timed(
            lambda: repair_rounds(solution, routes, degraded, metrics=metrics)
        )
        for _ in range(REPEATS)
    )

    repaired = repair_rounds(solution, routes, degraded, metrics=metrics)
    validate_rounds(routes, route_masks(routes), repaired, degraded)
    counters = metrics.snapshot().counters
    fallbacks = counters.get("rwa.repair_fallback", 0)
    assert fallbacks == 0, "benchmark instance must repair incrementally"
    n_affected = counters.get("rwa.repair_affected", 0) // counters.get(
        "rwa.repair_calls", 1
    )
    return {
        "case": "dead-wavelength",
        "n": n,
        "transfers": len(routes),
        "n_affected": n_affected,
        "fallbacks": fallbacks,
        "full_s": full_s,
        "repair_s": repair_s,
        "speedup": full_s / repair_s,
    }


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _run_repair_micro():
    return [_time_single_fault(n) for n in NODES]


def test_single_fault_repair_speedup(once):
    rows = once(_run_repair_micro)
    table = AsciiTable(
        ["case", "N", "transfers", "affected", "full (ms)", "repair (ms)", "speedup"]
    )
    for row in rows:
        table.add_row([
            row["case"], row["n"], row["transfers"], row["n_affected"],
            f"{row['full_s'] * 1e3:.3f}", f"{row['repair_s'] * 1e3:.3f}",
            f"{row['speedup']:.1f}x",
        ])
    print()
    print(f"single-fault repair vs full recolor, w={W}, k={K} (validated):")
    print(table.render())

    n1024 = next(r for r in rows if r["n"] == 1024)
    assert n1024["speedup"] >= 10.0

    OUT_PATH.write_text(json.dumps({"repair": rows}, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
