"""Bitmask RWA kernel vs the seed implementation — honest before/after.

Two measurements, written to ``BENCH_rwa.json`` at the repo root:

1. **Kernel micro-benchmark** — ``plan_rounds`` on the hardest step shapes
   (dense all-to-all among evenly spaced representatives; the heaviest WRHT
   step) at N ∈ {64, 256, 1024}, timed against the verbatim seed kernel
   preserved in :mod:`repro.optical._rwa_reference`. Round structure is
   asserted identical before any number is reported.
2. **Fig 6-style sweep** — a simulated-mode cluster-size sweep, seed-style
   (reference kernel, no plan cache, serial) vs the shipped configuration
   (bitmask kernel, warm plan cache, ``workers=4``).

Floors asserted here: ≥5× on the N=1024 dense step, ≥3× on the sweep.
"""

import json
import time
from pathlib import Path

import repro.optical.network as network_mod
from repro.collectives.alltoall import build_alltoall_step
from repro.collectives.registry import build_schedule
from repro.dnn.workload import PAPER_WORKLOADS
from repro.optical._rwa_reference import plan_rounds_reference
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.backend.plancache import default_plan_cache
from repro.optical.rwa import plan_rounds
from repro.runner.experiments import clear_network_caches, run_fig6
from repro.util.tables import AsciiTable

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_rwa.json"

# (label, N, representatives) — k evenly spaced nodes, all-to-all.
DENSE_CASES = [
    ("dense-alltoall", 64, 16),
    ("dense-alltoall", 256, 32),
    ("dense-alltoall", 1024, 64),
]
WRHT_NODES = (64, 256, 1024)
W = 64

SWEEP_NODES = (256, 512, 1024)
SWEEP_WORKERS = 4


def _dense_routes(n, k):
    """Routes of the all-to-all step among k evenly spaced reps on N nodes."""
    net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=n, n_wavelengths=W))
    step = build_alltoall_step([i * (n // k) for i in range(k)], 100)
    return n, net._route_step(step)


def _wrht_heaviest_routes(n):
    """Routes of the heaviest step of the planned WRHT schedule."""
    net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=n, n_wavelengths=W))
    sched = build_schedule("wrht", n, 1000, n_wavelengths=W, materialize=False)
    step = max((s for s, _ in sched.timing_profile), key=lambda s: s.n_transfers)
    return n, net._route_step(step)


def _time_kernels(n, routes):
    """(seed seconds, bitmask seconds) for plan_rounds on one instance,
    asserting both produce the identical round structure."""
    t0 = time.perf_counter()
    ref_rounds = plan_rounds_reference(routes, n, W)
    seed_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast_rounds = plan_rounds(routes, n, W)
    fast_s = time.perf_counter() - t0
    assert fast_rounds == ref_rounds  # parity before performance
    return seed_s, fast_s


def _run_micro():
    rows = []
    for label, n, k in DENSE_CASES:
        seed_s, fast_s = _time_kernels(*_dense_routes(n, k))
        rows.append({
            "case": label, "n": n, "transfers": k * (k - 1),
            "seed_s": seed_s, "bitmask_s": fast_s,
            "speedup": seed_s / fast_s,
        })
    for n in WRHT_NODES:
        n_seg, routes = _wrht_heaviest_routes(n)
        seed_s, fast_s = _time_kernels(n_seg, routes)
        rows.append({
            "case": "wrht-heaviest", "n": n, "transfers": len(routes),
            "seed_s": seed_s, "bitmask_s": fast_s,
            "speedup": seed_s / fast_s,
        })
    return rows


def _run_sweep_comparison():
    workloads = PAPER_WORKLOADS[:2]
    kwargs = dict(
        mode="simulated", nodes=SWEEP_NODES, n_wavelengths=W, workloads=workloads
    )
    cache = default_plan_cache()
    saved_maxsize = cache.maxsize
    original_kernel = network_mod.plan_rounds
    try:
        # Seed configuration: reference kernel, no plan cache, serial.
        network_mod.plan_rounds = plan_rounds_reference
        cache.resize(0)
        clear_network_caches()
        t0 = time.perf_counter()
        before_result = run_fig6(**kwargs)
        before_s = time.perf_counter() - t0
    finally:
        network_mod.plan_rounds = original_kernel
        cache.resize(saved_maxsize if saved_maxsize > 0 else 4096)
    cache.clear()
    clear_network_caches()
    # Warm the plan cache, then measure the shipped configuration.
    t0 = time.perf_counter()
    run_fig6(**kwargs)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    after_result = run_fig6(**kwargs, workers=SWEEP_WORKERS)
    after_s = time.perf_counter() - t0
    assert after_result.series == before_result.series  # same numbers, faster
    return {
        "nodes": list(SWEEP_NODES), "n_wavelengths": W,
        "workloads": [wl.name for wl in workloads],
        "workers": SWEEP_WORKERS,
        "seed_serial_s": before_s,
        "bitmask_cold_s": cold_s,
        "bitmask_warm_workers_s": after_s,
        "speedup": before_s / after_s,
    }


def test_bitmask_rwa_speedup(once):
    micro = once(_run_micro)
    table = AsciiTable(["case", "N", "transfers", "seed (s)", "bitmask (s)", "speedup"])
    for row in micro:
        table.add_row([
            row["case"], row["n"], row["transfers"],
            f"{row['seed_s']:.3f}", f"{row['bitmask_s']:.3f}",
            f"{row['speedup']:.1f}x",
        ])
    print()
    print(f"plan_rounds kernel, w={W} (round structure asserted identical):")
    print(table.render())

    dense_1024 = next(
        r for r in micro if r["case"] == "dense-alltoall" and r["n"] == 1024
    )
    assert dense_1024["speedup"] >= 5.0

    sweep_cmp = _run_sweep_comparison()
    print(
        f"fig6-style simulated sweep {sweep_cmp['nodes']}: "
        f"seed serial {sweep_cmp['seed_serial_s']:.2f}s -> "
        f"warm cache + {SWEEP_WORKERS} workers "
        f"{sweep_cmp['bitmask_warm_workers_s']:.2f}s "
        f"({sweep_cmp['speedup']:.1f}x)"
    )
    assert sweep_cmp["speedup"] >= 3.0

    OUT_PATH.write_text(
        json.dumps({"micro": micro, "fig6_style_sweep": sweep_cmp}, indent=2)
        + "\n"
    )
    print(f"wrote {OUT_PATH}")
