"""Infrastructure bench — DES kernel and simulator throughput.

Measures the machinery everything else stands on: raw event throughput of
the kernel, process/resource overhead, the live optical simulation's
event rate, and the packet-level electrical simulation. These are real
pytest-benchmark measurements (multiple rounds), unlike the single-shot
experiment benches — regressions here slow every validation run.
"""

from repro.collectives.registry import build_schedule
from repro.electrical.config import ElectricalSystemConfig
from repro.electrical.packets import PacketLevelNetwork
from repro.optical.config import OpticalSystemConfig
from repro.optical.livesim import LiveOpticalSimulation
from repro.sim import Resource, Simulator


def test_kernel_timeout_throughput(benchmark):
    """Schedule-and-drain 20k independent timeouts."""

    def run():
        sim = Simulator()
        for i in range(20_000):
            sim.timeout((i % 97) * 1e-6)
        sim.run()
        return sim.n_processed

    events = benchmark(run)
    assert events == 20_000


def test_kernel_process_chains(benchmark):
    """1000 processes of 20 sequential timeouts each."""

    def run():
        sim = Simulator()

        def worker():
            for _ in range(20):
                yield sim.timeout(1e-6)
            return True

        procs = [sim.process(worker()) for _ in range(1000)]
        sim.run()
        return sum(1 for p in procs if p.value)

    assert benchmark(run) == 1000


def test_kernel_resource_contention(benchmark):
    """2000 processes contending for a 4-slot resource."""

    def run():
        sim = Simulator()
        resource = Resource(sim, 4)
        done = []

        def worker():
            yield resource.acquire()
            yield sim.timeout(1e-6)
            resource.release()
            done.append(1)

        for _ in range(2000):
            sim.process(worker())
        sim.run()
        return len(done)

    assert benchmark(run) == 2000


def test_live_optical_simulation_rate(benchmark):
    """Event-driven replay of a 64-node WRHT All-reduce."""
    cfg = OpticalSystemConfig(n_nodes=64, n_wavelengths=8)
    sched = build_schedule("wrht", 64, 640, n_wavelengths=8)

    def run():
        return LiveOpticalSimulation(cfg).run(sched).n_events

    events = benchmark(run)
    assert events > 100


def test_packet_level_simulation_rate(benchmark):
    """Store-and-forward packets for a 16-node BT All-reduce."""
    cfg = ElectricalSystemConfig(n_nodes=16)
    sched = build_schedule("bt", 16, 1800)

    def run():
        return PacketLevelNetwork(cfg).execute(sched).n_packets

    packets = benchmark(run)
    assert packets > 0
