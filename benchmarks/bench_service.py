"""Planning-service throughput — req/s and tail latency through a live daemon.

One measurement, written to ``BENCH_service.json`` at the repo root: a
multi-tenant client fleet hammering a live :class:`PlanningService` over
its unix socket with a *micro grid* of plan requests (five collectives x
two workload sizes at N=16, w=8 — small enough that a lowering costs
microseconds, so the number measures the service stack: framing, asyncio
dispatch, admission/quota bookkeeping, coalescing and the shared plan
cache, not the RWA solver).

Protocol: every distinct cell is warmed once, then ``TENANTS`` threads
each replay a seeded shuffle of the grid through their own blocking
client, timing every round trip. Reported per run:

- ``rps`` — total requests / wall clock across the fleet;
- ``p50_ms`` / ``p99_ms`` — per-request round-trip latency percentiles.

The request/tenant/cell counts are structural (gated exactly); ``rps`` is
host-noisy wall clock, gated against a perf floor *and* the absolute
>=500 req/s floor the issue pins.
"""

import json
import random
import socket
import statistics
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.service.api import ALGORITHMS, PlanRequest
from repro.service.client import PlanClient
from repro.service.daemon import PlanningService
from repro.util.tables import AsciiTable

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

N_NODES = 16
W = 8
PARAM_SIZES = (4096, 65536)
TENANTS = 4
REQUESTS_PER_TENANT = 100
MIN_RPS = 500.0


def _micro_grid() -> list[PlanRequest]:
    """The distinct cells: every algorithm x workload size at N=16, w=8."""
    return [
        PlanRequest(algorithm, N_NODES, n_params, n_wavelengths=W)
        for algorithm in ALGORITHMS
        for n_params in PARAM_SIZES
    ]


def _tenant_mix(cells: list[PlanRequest], tenant: str, rng: random.Random):
    """A seeded per-tenant replay: REQUESTS_PER_TENANT draws over the grid."""
    draws = [rng.randrange(len(cells)) for _ in range(REQUESTS_PER_TENANT)]
    return [
        PlanRequest(**{**cells[i].to_dict(), "tenant": tenant}) for i in draws
    ]


def _run_service_micro() -> list[dict]:
    """Measure the daemon under the multi-tenant micro-grid replay."""
    if not hasattr(socket, "AF_UNIX"):
        raise RuntimeError("planning daemon needs unix sockets")
    cells = _micro_grid()
    rng = random.Random(20240931)
    mixes = [
        _tenant_mix(cells, f"tenant-{t}", rng) for t in range(TENANTS)
    ]
    latencies: list[float] = []
    lat_lock = threading.Lock()
    start_barrier = threading.Barrier(TENANTS + 1)

    def replay(mix):
        with PlanClient(sock_path, timeout=60.0) as client:
            client.ping()  # connection cost paid before the clock starts
            start_barrier.wait()
            mine = []
            for request in mix:
                t0 = time.perf_counter()
                client.submit(request)
                mine.append(time.perf_counter() - t0)
        with lat_lock:
            latencies.extend(mine)

    with tempfile.TemporaryDirectory() as tmp:
        sock_path = f"{tmp}/plan.sock"
        service = PlanningService(sock_path)
        server = threading.Thread(
            target=lambda: __import__("asyncio").run(service.run()), daemon=True
        )
        server.start()
        deadline = time.monotonic() + 10.0
        while not Path(sock_path).exists():
            if time.monotonic() > deadline:
                raise RuntimeError("daemon socket never appeared")
            time.sleep(0.005)
        with PlanClient(sock_path, timeout=60.0) as warmer:
            for cell in cells:
                warmer.submit(cell)  # lowerings cached before the clock
        threads = [
            threading.Thread(target=replay, args=(mix,)) for mix in mixes
        ]
        for t in threads:
            t.start()
        start_barrier.wait()
        wall_t0 = time.perf_counter()
        for t in threads:
            t.join()
        wall = time.perf_counter() - wall_t0
        with PlanClient(sock_path, timeout=10.0) as admin:
            admin.shutdown()
        server.join(timeout=10.0)

    n_requests = TENANTS * REQUESTS_PER_TENANT
    assert len(latencies) == n_requests
    ordered = sorted(latencies)
    return [
        {
            "case": "service-micro",
            "tenants": TENANTS,
            "requests": n_requests,
            "distinct_cells": len(cells),
            "rps": n_requests / wall,
            "p50_ms": statistics.median(ordered) * 1e3,
            "p99_ms": ordered[int(0.99 * (len(ordered) - 1))] * 1e3,
        }
    ]


@pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="planning daemon needs unix sockets"
)
def test_service_throughput(once):
    rows = once(_run_service_micro)
    table = AsciiTable(
        ["case", "tenants", "requests", "cells", "req/s", "p50 (ms)", "p99 (ms)"]
    )
    for row in rows:
        table.add_row([
            row["case"], row["tenants"], row["requests"], row["distinct_cells"],
            f"{row['rps']:.0f}", f"{row['p50_ms']:.3f}", f"{row['p99_ms']:.3f}",
        ])
    print()
    print(f"planning-service micro grid, N={N_NODES}, w={W} (warm cache):")
    print(table.render())

    (row,) = rows
    assert row["rps"] >= MIN_RPS

    OUT_PATH.write_text(json.dumps({"service": rows}, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
