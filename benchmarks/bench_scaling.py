"""Analysis bench — latency/bandwidth decomposition across cluster sizes.

The numbers behind the Fig 6 trend discussion: for each algorithm, how
much of the communication time is per-step overhead (the MRR
reconfiguration term ``a·θ``) versus payload serialization, from 128 to
4096 nodes on the ResNet50 gradient. Asserts the paper's trend claims
precisely: Ring becomes latency-bound, WRHT stays bandwidth-bound, BT is
bandwidth-bound but at a log-N payload multiple.
"""

from repro.analysis.scaling import scaling_series
from repro.dnn.workload import workload_by_name
from repro.optical.config import OpticalSystemConfig
from repro.util.tables import AsciiTable

NODES = (128, 256, 512, 1024, 2048, 4096)


def _measure():
    cost = OpticalSystemConfig(n_nodes=4096, n_wavelengths=64).cost_model()
    d = float(workload_by_name("ResNet50").gradient_bytes)
    return {
        algo: scaling_series(algo, NODES, d, cost)
        for algo in ("Ring", "H-Ring", "BT", "RD", "WRHT")
    }


def test_scaling_decomposition(once):
    series = once(_measure)
    table = AsciiTable(
        ["algorithm", "N", "steps", "total (ms)", "latency (ms)",
         "bandwidth (ms)", "latency %"]
    )
    for algo, points in series.items():
        for p in points:
            table.add_row(
                [algo, p.n_nodes, p.steps, p.total_time * 1e3,
                 p.latency_time * 1e3, p.bandwidth_time * 1e3,
                 p.latency_fraction * 100]
            )
    print()
    print("Latency/bandwidth decomposition (ResNet50, w=64, calibrated):")
    print(table.render())

    ring = series["Ring"]
    assert ring[-1].latency_fraction > 0.8  # latency-bound at 4096 nodes
    assert ring[-1].latency_time > 30 * ring[0].latency_time  # linear rise
    for p in series["WRHT"]:
        assert p.latency_fraction < 0.02  # steps never dominate WRHT
        assert p.steps <= 4
    bt = series["BT"]
    assert all(p.latency_fraction < 0.01 for p in bt)  # full-d payloads
    assert bt[-1].bandwidth_time > bt[0].bandwidth_time  # log-N growth
    hring = series["H-Ring"]
    assert hring[-1].latency_fraction < ring[-1].latency_fraction


def test_lower_bound_optimality(once):
    """How close each algorithm gets to the algorithm-independent ring
    lower bounds (information-spread steps, ingress bandwidth)."""
    from repro.core.lowerbounds import min_allreduce_steps, optimality_report

    def measure():
        cost = OpticalSystemConfig(n_nodes=1024, n_wavelengths=64).cost_model()
        d = float(workload_by_name("ResNet50").gradient_bytes)
        return optimality_report(1024, d, 64, cost)

    report = once(measure)
    table = AsciiTable(["algorithm", "time (ms)", "steps / floor", "time / floor"])
    for entry in report:
        table.add_row(
            [entry.algorithm, entry.time * 1e3, entry.step_ratio, entry.time_ratio]
        )
    print()
    print(f"Distance from the universal ring lower bounds "
          f"(N=1024, w=64, floor steps = {min_allreduce_steps(1024, 64)}):")
    print(table.render())

    by_name = {e.algorithm: e for e in report}
    assert by_name["WRHT"].step_ratio == 1.5  # 3 steps vs floor 2
    assert min(report, key=lambda e: e.time_ratio).algorithm == "WRHT"
    assert all(e.time_ratio >= 1.0 for e in report)
