"""Degraded-mode availability and fault-machinery overhead.

Two measurements, written to ``BENCH_faults.json`` at the repo root:

1. **Availability sweep** — every canonical fault scenario
   (:func:`repro.runner.faultsweep.default_fault_scenarios`) priced on
   both fault-aware backends, each degraded plan statically verified by
   :mod:`repro.check` before its number is reported. The interesting
   figure per row is the availability ratio (healthy / degraded
   throughput).
2. **Zero-fault overhead** — lowering with the fault machinery present but
   the fault set empty must cost (essentially) the same as the seed path:
   the fault views are hoisted once per network and every per-round check
   is gated on emptiness. Measured as warm ``lower`` time with and without
   an (inert) empty fault set attached.

Floors asserted: every scenario verifies clean; availability stays above
50% for single faults; the empty-fault overhead stays under 25% on a warm
lower (the gate is a handful of attribute reads; the bound is generous to
absorb timer noise at microsecond scale).
"""

import json
import time
from pathlib import Path

from repro.backend.plancache import PlanCache
from repro.collectives import build_wrht_schedule
from repro.faults.models import FaultSet
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.runner.faultsweep import default_fault_scenarios, run_fault_sweep
from repro.util.tables import AsciiTable

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

N_NODES = 64
N_WAVELENGTHS = 16
TOTAL_ELEMS = 100_000
OVERHEAD_REPEATS = 50


def _run_availability():
    cells = run_fault_sweep(
        n_nodes=N_NODES, n_wavelengths=N_WAVELENGTHS, total_elems=TOTAL_ELEMS
    )
    return [
        {
            "scenario": c.scenario, "backend": c.backend,
            "n_survivors": c.n_survivors,
            "healthy_s": c.healthy_time, "degraded_s": c.degraded_time,
            "slowdown_pct": c.slowdown_pct, "availability": c.availability,
            "n_errors": c.n_errors,
        }
        for c in cells
    ]


def _time_warm_lower(config):
    """Seconds per warm ``lower`` (plan cache disabled; RWA caches warm)."""
    net = OpticalRingNetwork(config, plan_cache=PlanCache(maxsize=0))
    schedule = build_wrht_schedule(
        config.n_nodes, TOTAL_ELEMS, n_wavelengths=config.n_wavelengths
    )
    net.lower(schedule, 4.0)  # warm routing/pattern state
    t0 = time.perf_counter()
    for _ in range(OVERHEAD_REPEATS):
        net.lower(schedule, 4.0)
    return (time.perf_counter() - t0) / OVERHEAD_REPEATS


def _run_overhead():
    base = OpticalSystemConfig(n_nodes=N_NODES, n_wavelengths=N_WAVELENGTHS)
    gated = OpticalSystemConfig(
        n_nodes=N_NODES, n_wavelengths=N_WAVELENGTHS, faults=FaultSet()
    )
    baseline_s = _time_warm_lower(base)
    empty_faults_s = _time_warm_lower(gated)
    return {
        "n_nodes": N_NODES, "n_wavelengths": N_WAVELENGTHS,
        "repeats": OVERHEAD_REPEATS,
        "baseline_lower_s": baseline_s,
        "empty_faultset_lower_s": empty_faults_s,
        "overhead_pct": 100.0 * (empty_faults_s - baseline_s) / baseline_s,
    }


def test_fault_availability_and_overhead(once):
    rows = once(_run_availability)
    table = AsciiTable(
        ["scenario", "backend", "survivors", "degraded (ms)",
         "slowdown", "availability", "check errors"]
    )
    for row in rows:
        table.add_row([
            row["scenario"], row["backend"], row["n_survivors"],
            f"{row['degraded_s'] * 1e3:.4f}",
            f"{row['slowdown_pct']:+.0f}%",
            f"{row['availability']:.2f}", row["n_errors"],
        ])
    print()
    print(f"fault scenarios, N={N_NODES}, w={N_WAVELENGTHS}:")
    print(table.render())

    # Every degraded plan must verify clean — an unverified availability
    # number is worthless.
    assert all(row["n_errors"] == 0 for row in rows)
    single = [
        r for r in rows
        if r["scenario"] != "compound" and r["backend"] == "optical"
    ]
    assert single and all(r["availability"] >= 0.5 for r in single)

    overhead = _run_overhead()
    print(
        f"zero-fault lower overhead: "
        f"{overhead['baseline_lower_s'] * 1e3:.3f}ms -> "
        f"{overhead['empty_faultset_lower_s'] * 1e3:.3f}ms "
        f"({overhead['overhead_pct']:+.1f}%)"
    )
    assert overhead["overhead_pct"] < 25.0

    OUT_PATH.write_text(
        json.dumps({"scenarios": rows, "zero_fault_overhead": overhead},
                   indent=2)
        + "\n"
    )
    print(f"wrote {OUT_PATH}")
