"""Figure 7 — electrical fat-tree vs optical ring (128…1024 nodes).

E-Ring and Recursive Doubling run on the fluid fat-tree simulation; O-Ring
and WRHT on the optical ring (w=64). Paper claims (Sec 5.6): E-Ring
highest, RD below it at scale, O-Ring well below both (−48.74% vs E-Ring on
average), WRHT lowest (−61.23% vs E-Ring, −55.51% vs RD).
"""

from benchmarks.conftest import print_experiment
from repro.runner.experiments import run_fig7

PAPER = [
    ("E-Ring", "O-Ring", 48.74),
    ("E-Ring", "WRHT", 61.23),
    ("RD", "WRHT", 55.51),
]


def test_fig7(once):
    result = once(run_fig7, mode="analytical")
    print_experiment(result, PAPER)

    for wl in result.workloads:
        for n in result.x_values:
            # Optical beats electrical for the same Ring algorithm — the
            # paper's headline optical-vs-electrical claim, everywhere.
            assert result.cell(wl, "O-Ring", n) < result.cell(wl, "E-Ring", n), (wl, n)
            # WRHT beats both electrical baselines everywhere.
            wrht = result.cell(wl, "WRHT", n)
            assert wrht < result.cell(wl, "E-Ring", n), (wl, n)
            assert wrht < result.cell(wl, "RD", n), (wl, n)
        # WRHT lowest overall at the smallest and the paper-scale points.
        # (At mid-N our model has a genuine O-Ring/WRHT crossover for the
        # largest gradients — 3·d payload vs 2·d — that the paper's bars do
        # not show; see EXPERIMENTS.md.)
        for n in (result.x_values[0], result.x_values[-1]):
            assert result.cell(wl, "WRHT", n) == min(
                result.cell(wl, algo, n) for algo in result.algorithms()
            ), (wl, n)
        # Everything but WRHT grows with the cluster; WRHT stays near-flat.
        for algo in ("E-Ring", "RD", "O-Ring"):
            series = result.series[(wl, algo)]
            assert series[-1] > series[0]
        wrht_series = result.series[(wl, "WRHT")]
        assert max(wrht_series) < 2.0 * min(wrht_series)

    # RD below E-Ring at scale for the latency-bound workload (ResNet50).
    # For the bandwidth-bound models our RD (full-vector exchanges through
    # ECMP collisions) exceeds E-Ring — documented divergence.
    assert result.cell("ResNet50", "RD", 1024) < result.cell("ResNet50", "E-Ring", 1024)

    # Headline averages: O-Ring's matches the paper closely; WRHT vs E-Ring
    # almost exactly; WRHT vs RD overshoots (our fat-tree RD pays ECMP
    # collision congestion; see EXPERIMENTS.md).
    assert 40 < result.reduction_vs("E-Ring", "O-Ring") < 60   # paper 48.74
    assert 50 < result.reduction_vs("E-Ring", "WRHT") < 72     # paper 61.23
    assert result.reduction_vs("RD", "WRHT") > 55.51           # paper 55.51
