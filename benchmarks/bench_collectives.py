"""Rival-collectives bake-off: Swing and SCRing raced against the seed set.

Two deterministic measurement grids, written to ``BENCH_collectives.json``
at the repo root and gated by ``scripts/bench_gate.py`` via
:func:`repro.obs.benchgate.compare_collectives`:

1. **Completion-time curves** — every registered algorithm with a closed
   form, priced on all three backends over the Fig-4..7 node/payload grid.
   The simulated backends (optical RWA, electrical fluid flow) stop at
   ``N = 64``: one Swing lowering at N=256 routes ~3·N log N long chords
   through the RWA kernel and takes ~10 s, far too slow for a per-push
   gate, so larger sizes are carried by the analytic backend only (the
   printed table says so explicitly — nothing is dropped silently).
2. **Fault grid** — every algorithm through every canonical fault scenario
   (:func:`repro.runner.faultsweep.default_fault_scenarios`) on the
   optical substrate at N=16/w=8, the degraded schedule built by the
   generic :func:`repro.collectives.build_shrunk_schedule` path
   (re-planned :func:`~repro.faults.build_degraded_wrht_schedule` for
   WRHT) and statically verified before its number is reported.

DBTree is excluded from both grids: it has no closed-form model, so the
analytic backend rejects it by design (its simulated numbers match BT's
step count and are covered by the BT rows).
"""

import json
import os
from pathlib import Path

from repro.backend.analytic import AnalyticBackend
from repro.backend.electrical import ElectricalBackend
from repro.backend.optical import OpticalBackend
from repro.check.context import optical_context
from repro.check.engine import verify_plan
from repro.check.findings import errors
from repro.collectives import build_schedule, build_shrunk_schedule
from repro.core.timing import CostModel
from repro.electrical.config import ElectricalSystemConfig
from repro.faults import build_degraded_wrht_schedule
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.runner.faultsweep import default_fault_scenarios
from repro.util.tables import AsciiTable

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_collectives.json"

#: (registry name, builder kwargs) — the bake-off lineup. SCRing runs at
#: two pipeline depths: the ring-halving default and a deep-pipelined arc
#: split approaching the 2-step early-termination limit.
ALGORITHMS = (
    ("ring", {}),
    ("bt", {}),
    ("rd", {}),
    ("swing", {}),
    ("scring", {"pipeline": 1}),
    ("scring", {"pipeline": 4}),
    ("wrht", {}),
)

#: Node sizes on the closed-form (analytic) backend — reaches Table 1's N.
ANALYTIC_NODES = (16, 64, 256, 1024)
#: Node sizes on the simulated backends (see module docstring for the cap).
#: The scheduled full-grid CI lane (WRHT_BENCH_FULL=1) lifts the per-push
#: cap and runs the slow N=256 RWA cells too — artifacts only, not gated.
SIMULATED_NODES = (
    (16, 64, 256) if os.environ.get("WRHT_BENCH_FULL") == "1" else (16, 64)
)
#: Payload grid: the Fig-5 small-model scale and a Fig-6/7 large-model
#: scale (elements; x4 bytes).
PAYLOAD_ELEMS = (100_000, 25_000_000)

N_WAVELENGTHS = 64
BYTES_PER_ELEM = 4.0

FAULT_NODES = 16
FAULT_WAVELENGTHS = 8
FAULT_ELEMS = 100_000

#: Strict-units cost model (Table 2): 40 Gbit/s line rate, 25 µs MRR
#: reconfiguration per step.
COST_MODEL = CostModel(line_rate=40e9 / 8, step_overhead=25e-6)


def _algo_label(algo: str, kwargs: dict) -> str:
    if algo == "scring":
        return f"scring-p{kwargs.get('pipeline', 1)}"
    return algo


def _build(algo: str, n: int, elems: int, kwargs: dict, materialize: bool = True):
    kw = dict(kwargs)
    if algo == "wrht":
        kw["n_wavelengths"] = N_WAVELENGTHS
    if algo == "hring":
        kw["m"] = min(5, n)
    return build_schedule(algo, n, elems, materialize=materialize, **kw)


def _run_curves() -> list[dict]:
    """One row per (algorithm, backend, N, payload): steps + total time."""
    rows = []
    for backend_name in ("analytic", "optical", "electrical"):
        nodes = ANALYTIC_NODES if backend_name == "analytic" else SIMULATED_NODES
        for n in nodes:
            if backend_name == "analytic":
                backend = AnalyticBackend(COST_MODEL, w=N_WAVELENGTHS)
            elif backend_name == "optical":
                backend = OpticalBackend(
                    OpticalSystemConfig(n_nodes=n, n_wavelengths=N_WAVELENGTHS)
                )
            else:
                backend = ElectricalBackend(ElectricalSystemConfig(n_nodes=n))
            for elems in PAYLOAD_ELEMS:
                for algo, kwargs in ALGORITHMS:
                    # The closed-form backend never reads materialized
                    # steps; skipping them keeps the N=1024 cells cheap.
                    schedule = _build(
                        algo, n, elems, kwargs,
                        materialize=backend_name != "analytic",
                    )
                    result = backend.run(schedule, bytes_per_elem=BYTES_PER_ELEM)
                    rows.append(
                        {
                            "algorithm": _algo_label(algo, kwargs),
                            "backend": backend_name,
                            "n_nodes": n,
                            "elems": elems,
                            "n_steps": result.n_steps,
                            "total_time_s": result.total_time,
                        }
                    )
    return rows


def _run_fault_grid() -> list[dict]:
    """One row per (algorithm, scenario): degraded optical cell, verified."""
    rows = []
    scenarios = default_fault_scenarios(FAULT_NODES, FAULT_WAVELENGTHS)
    healthy_net = OpticalRingNetwork(
        OpticalSystemConfig(n_nodes=FAULT_NODES, n_wavelengths=FAULT_WAVELENGTHS)
    )
    for scenario, faults in scenarios.items():
        survivors = tuple(
            node for node in range(FAULT_NODES) if node not in faults.dead_nodes
        )
        degraded_net = OpticalRingNetwork(
            OpticalSystemConfig(
                n_nodes=FAULT_NODES, n_wavelengths=FAULT_WAVELENGTHS, faults=faults
            )
        )
        for algo, kwargs in ALGORITHMS:
            healthy_sched = _build(algo, FAULT_NODES, FAULT_ELEMS, kwargs)
            healthy_s = healthy_net.execute_plan(
                healthy_net.lower(healthy_sched, BYTES_PER_ELEM)
            ).total_time
            if algo == "wrht":
                # WRHT re-plans its hierarchy under the degraded budget
                # (group size, shortcut feasibility, survivor regrouping)
                # — the generic shrink would keep the stale plan, and even
                # a full-survivor scenario can kill wavelengths.
                degraded_sched = build_degraded_wrht_schedule(
                    FAULT_NODES, FAULT_ELEMS, faults,
                    n_wavelengths=FAULT_WAVELENGTHS,
                )
            elif len(survivors) == FAULT_NODES:
                degraded_sched = healthy_sched
            else:
                degraded_sched = build_shrunk_schedule(
                    algo, FAULT_NODES, FAULT_ELEMS, survivors, **kwargs
                )
            degraded_plan = degraded_net.lower(degraded_sched, BYTES_PER_ELEM)
            degraded_s = degraded_net.execute_plan(degraded_plan).total_time
            context = optical_context(
                degraded_net, degraded_sched, degraded_plan,
                bytes_per_elem=BYTES_PER_ELEM,
            )
            n_errors = len(errors(verify_plan(context=context)))
            rows.append(
                {
                    "algorithm": _algo_label(algo, kwargs),
                    "scenario": scenario,
                    "n_survivors": len(survivors),
                    "healthy_s": healthy_s,
                    "degraded_s": degraded_s,
                    "availability": healthy_s / degraded_s,
                    "n_errors": n_errors,
                }
            )
    return rows


def test_collectives_bakeoff(once):
    curves = once(_run_curves)

    table = AsciiTable(
        ["backend", "N", "elems", "algorithm", "steps", "total (ms)"]
    )
    for row in curves:
        table.add_row([
            row["backend"], row["n_nodes"], row["elems"], row["algorithm"],
            row["n_steps"], f"{row['total_time_s'] * 1e3:.4f}",
        ])
    print()
    print(
        f"completion-time curves (simulated backends capped at "
        f"N<={max(SIMULATED_NODES)}, analytic to N={max(ANALYTIC_NODES)}):"
    )
    print(table.render())

    def cell(algorithm, backend, n, elems):
        return next(
            r for r in curves
            if r["algorithm"] == algorithm and r["backend"] == backend
            and r["n_nodes"] == n and r["elems"] == elems
        )

    big = PAYLOAD_ELEMS[-1]
    for backend in ("analytic", "optical", "electrical"):
        n = 1024 if backend == "analytic" else max(SIMULATED_NODES)
        ring = cell("ring", backend, n, big)
        swing = cell("swing", backend, n, big)
        scring = cell("scring-p1", backend, n, big)
        # Swing must beat Ring at scale: same ~2d of traffic across
        # logarithmically many (vs linearly many) reconfigurations.
        assert swing["total_time_s"] < ring["total_time_s"]
        assert swing["n_steps"] < ring["n_steps"]
        # SCRing's default depth halves Ring's step count (±fold).
        assert scring["n_steps"] <= ring["n_steps"] // 2 + 2

    # Deep pipelining must monotonically cut SCRing steps.
    for backend in ("analytic", "optical", "electrical"):
        n = max(SIMULATED_NODES)
        assert (
            cell("scring-p4", backend, n, big)["n_steps"]
            < cell("scring-p1", backend, n, big)["n_steps"]
        )

    faults = _run_fault_grid()
    ftable = AsciiTable(
        ["scenario", "algorithm", "survivors", "degraded (ms)",
         "availability", "check errors"]
    )
    for row in faults:
        ftable.add_row([
            row["scenario"], row["algorithm"], row["n_survivors"],
            f"{row['degraded_s'] * 1e3:.4f}",
            f"{row['availability']:.2f}", row["n_errors"],
        ])
    print()
    print(f"fault grid, N={FAULT_NODES}, w={FAULT_WAVELENGTHS}:")
    print(ftable.render())

    # Every degraded plan must verify clean across the whole lineup — an
    # unverified bake-off number is worthless.
    assert all(row["n_errors"] == 0 for row in faults)
    # Every algorithm must survive every canonical scenario.
    n_algos = len(ALGORITHMS)
    n_scenarios = len(default_fault_scenarios(FAULT_NODES, FAULT_WAVELENGTHS))
    assert len(faults) == n_algos * n_scenarios

    OUT_PATH.write_text(
        json.dumps({"curves": curves, "faults": faults}, indent=2) + "\n"
    )
    print(f"wrote {OUT_PATH}")
