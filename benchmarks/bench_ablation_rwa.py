"""Ablation — wavelength assignment strategy (Sec 4.1.2's cited options).

Compares First-Fit [21], Random-Fit [31] and the DSATUR structured
assignment on WRHT's hardest step shapes: the level-1 group collect (nested
same-side routes) and the representative all-to-all at three slack levels.
Reports rounds needed and peak wavelength index — the quantities that turn
into reconfiguration time.
"""

from repro.optical.network import OpticalRingNetwork
from repro.optical.config import OpticalSystemConfig
from repro.optical.rwa import dsatur_assign, plan_rounds
from repro.collectives.registry import build_schedule
from repro.runner.sweep import sweep
from repro.sim.rng import SeededRng
from repro.util.tables import AsciiTable

CASES = [
    # (label, N, w for the system, wrht planned w)
    ("collect m=129 (paper)", 1024, 64, 64),
    ("all-to-all at 2x slack", 128, 16, 16),
    ("all-to-all at exact bound", 16, 32, 32),
]
STRATEGIES = ("first_fit", "random_fit", "dsatur")


def _strategy_cell(case, strategy):
    """One (case, strategy) ablation row; module-level for sweep dispatch."""
    label, n, w_sys, w_plan = case
    sched = build_schedule("wrht", n, 1000, n_wavelengths=w_plan,
                           materialize=False)
    if strategy == "dsatur":
        # DSATUR alone on the heaviest step.
        net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=n, n_wavelengths=w_sys))
        heaviest = max(
            (step for step, _ in sched.timing_profile), key=lambda s: s.n_transfers
        )
        routes = net._route_step(heaviest)
        structured = dsatur_assign(routes, n, w_sys)
        return (label, "dsatur", 1 if structured else "-", 1,
                structured.peak_wavelength if structured else "-")
    net = OpticalRingNetwork(
        OpticalSystemConfig(n_nodes=n, n_wavelengths=w_sys),
        strategy=strategy,
        rng=SeededRng(7) if strategy == "random_fit" else None,
    )
    result = net.execute(sched)
    return (label, strategy, result.total_rounds, result.n_steps,
            result.peak_wavelength)


def _measure():
    grid = sweep(_strategy_cell, {"case": CASES, "strategy": STRATEGIES})
    return [grid[(case, strategy)] for case in CASES for strategy in STRATEGIES]


def test_rwa_strategy_ablation(once):
    rows = once(_measure)
    table = AsciiTable(["case", "strategy", "rounds", "steps", "peak λ"])
    for row in rows:
        table.add_row(row)
    print()
    print(table.render())

    by_key = {(label, strat): (rounds, steps, peak)
              for label, strat, rounds, steps, peak in rows}
    # Paper configuration: every strategy fits every step in one round and
    # first-fit touches exactly the ⌊m/2⌋ = 64 wavelengths.
    rounds, steps, peak = by_key[("collect m=129 (paper)", "first_fit")]
    assert rounds == steps and peak == 64
    rounds, steps, _ = by_key[("collect m=129 (paper)", "random_fit")]
    assert rounds == steps
    # With 2x slack both greedy strategies still fit in one round per step.
    rounds, steps, _ = by_key[("all-to-all at 2x slack", "first_fit")]
    assert rounds == steps


def test_second_fiber_pair_ablation(once):
    """TeraRack ships two fibers per direction; the paper's wavelength
    accounting assumes one pool. This ablation measures what the second
    pair buys: under wavelength scarcity, channel capacity doubles and the
    serialization rounds collapse."""

    def measure():
        sched = build_schedule("wrht", 128, 12_800, n_wavelengths=16)
        out = {}
        for fibers in (1, 2):
            net = OpticalRingNetwork(
                OpticalSystemConfig(
                    n_nodes=128, n_wavelengths=4, fibers_per_direction=fibers
                )
            )
            result = net.execute(sched)
            out[fibers] = (result.total_rounds, result.total_time)
        return out

    results = once(measure)
    table = AsciiTable(["fibers/direction", "rounds", "time (ms)"])
    for fibers, (rounds, time) in results.items():
        table.add_row([fibers, rounds, time * 1e3])
    print()
    print("WRHT (planned for w=16) on a 4-wavelength system:")
    print(table.render())
    assert results[2][0] < results[1][0]
    assert results[2][1] < results[1][1]


def test_plan_rounds_round_structure(once):
    """plan_rounds under scarcity: rounds partition the transfers."""

    def build():
        n = 64
        net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=n, n_wavelengths=2))
        sched = build_schedule("wrht", n, 100, n_wavelengths=8)
        step = max(
            (s for s, _ in sched.timing_profile), key=lambda s: s.n_transfers
        )
        routes = net._route_step(step)
        return step, plan_rounds(routes, n, 2, strategy="first_fit")

    step, rounds = once(build)
    assert len(rounds) > 1  # scarcity forces serialization
    covered = sorted(i for rnd in rounds for i in rnd)
    assert covered == list(range(step.n_transfers))
    print(f"\n64-node WRHT collect on a 2-wavelength system: "
          f"{len(rounds)} rounds for {step.n_transfers} transfers")
