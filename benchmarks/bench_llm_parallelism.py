"""Extension bench — LLM hybrid parallelism on the ring (Sec 6.2).

The paper's discussion: GPT-3 cannot train data-parallel, but WRHT still
serves the communicator groups of a hybrid decomposition. This bench
quantifies it: memory feasibility at N=1024 (pure DP vs TP×PP×DP), then
per-training-step communication on a 256-node ring grid (tp=8, pp=8,
dp=4), comparing WRHT and Ring as the data-parallel gradient collective.

Finding (asserted below): for *small* DP groups moving *huge* shards, Ring
beats WRHT — the same payload-vs-steps trade-off as Fig 5's low-wavelength
regime, now appearing through group size. WRHT's advantage belongs to wide
groups; the right library behaviour is choosing per group, which the
communicator API allows.
"""

from repro.dnn.models import gpt3
from repro.dnn.parallelism import HybridParallelComm, MemoryModel, ParallelismPlan
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.util.tables import AsciiTable

N_RING = 256
GRID = dict(tp=8, pp=8, dp=4)


def _measure():
    model = gpt3()
    memory = MemoryModel()
    mem_rows = []
    for label, plan in (
        ("pure DP (dp=1024)", ParallelismPlan(1024, dp=1024)),
        ("tp=8, pp=16, dp=8", ParallelismPlan(1024, tp=8, pp=16, dp=8)),
        ("tp=8, pp=8, dp=16", ParallelismPlan(1024, tp=8, pp=8, dp=16)),
    ):
        mem_rows.append(
            (label, memory.per_rank_bytes(model, plan) / 1e9,
             memory.fits(model, plan))
        )

    net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=N_RING, n_wavelengths=64))
    plan = ParallelismPlan(N_RING, **GRID)
    cost_rows = {}
    for dp_algo in ("ring", "wrht"):
        kwargs = {"n_wavelengths": 64} if dp_algo == "wrht" else {}
        comm = HybridParallelComm(model, plan, net, dp_algorithm=dp_algo, **kwargs)
        cost_rows[dp_algo] = comm.step_cost(micro_batch=1, n_micro_batches=4)
    return mem_rows, cost_rows


def test_llm_hybrid_parallelism(once):
    mem_rows, cost_rows = once(_measure)

    mem_table = AsciiTable(["plan (N=1024)", "per-rank state (GB)", "fits 80 GB"])
    for label, gb, fits in mem_rows:
        mem_table.add_row([label, gb, fits])
    print()
    print("GPT-3 (175B) memory feasibility:")
    print(mem_table.render())
    assert not mem_rows[0][2]  # pure DP impossible — Sec 6.2's premise
    assert mem_rows[1][2]      # hybrid fits

    cost_table = AsciiTable(
        ["DP collective", "TP comm (ms)", "PP comm (ms)", "DP comm (ms)", "total (ms)"]
    )
    for algo, cost in cost_rows.items():
        cost_table.add_row(
            [algo.upper(), cost.tp_time * 1e3, cost.pp_time * 1e3,
             cost.dp_time * 1e3, cost.total * 1e3]
        )
    print()
    print(f"Per-step communication, {N_RING}-node ring grid "
          f"(tp={GRID['tp']}, pp={GRID['pp']}, dp={GRID['dp']}):")
    print(cost_table.render())

    # TP and PP components are identical across rows (same schedules).
    assert cost_rows["ring"].tp_time == cost_rows["wrht"].tp_time
    # The documented finding: tiny DP groups + huge shards favour Ring.
    assert cost_rows["ring"].dp_time < cost_rows["wrht"].dp_time
