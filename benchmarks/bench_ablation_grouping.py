"""Ablation — group size under physical constraints (Sec 4.4 made concrete).

Sweeps the WRHT group size m over every odd candidate on a 1024-node ring
and prints: steps θ, communication time (VGG16), Eq 7's worst-path length,
and whether the default physical budget admits it. Shows the two regimes
the planner navigates: small m is penalized *twice* (more steps AND longer
worst paths via extra hierarchy levels), large m is capped by wavelengths.
"""

from repro.core.constraints import OpticalPhyParams, group_size_feasible, max_communication_length
from repro.core.steps import wrht_steps
from repro.core.timing import wrht_time
from repro.core.planner import plan_wrht
from repro.dnn.workload import workload_by_name
from repro.optical.config import OpticalSystemConfig
from repro.runner.sweep import sweep
from repro.util.tables import AsciiTable

N, W = 1024, 64
GROUP_SIZES = (3, 5, 9, 17, 33, 65, 99, 129)


def _grouping_cell(m):
    """One design-space row for group size ``m`` (module-level so the sweep
    can dispatch it to worker processes)."""
    phy = OpticalPhyParams()
    cost = OpticalSystemConfig(n_nodes=N, n_wavelengths=W).cost_model()
    d = float(workload_by_name("VGG16").gradient_bytes)
    return (
        m,
        wrht_steps(N, m, W),
        wrht_time(N, d, cost, m=m, w=W) * 1e3,
        max_communication_length(m, N),
        group_size_feasible(m, N, phy),
    )


def _sweep():
    grid = sweep(_grouping_cell, {"m": GROUP_SIZES})
    return [grid[(m,)] for m in GROUP_SIZES]


def test_group_size_sweep(once):
    rows = once(_sweep)
    table = AsciiTable(["m", "θ", "VGG16 time (ms)", "L_max (hops)", "phy feasible"])
    for row in rows:
        table.add_row(row)
    print()
    print(f"WRHT group-size design space (N={N}, w={W}):")
    print(table.render())

    by_m = {m: (theta, t, lmax, ok) for m, theta, t, lmax, ok in rows}
    # Steps monotone non-increasing in m; time likewise.
    thetas = [by_m[m][0] for m in sorted(by_m)]
    assert thetas == sorted(thetas, reverse=True)
    # Small groups infeasible under Eq 7 (m=3 -> 729-hop top level).
    assert not by_m[3][3]
    assert by_m[3][2] == 729
    # The planner lands on the largest feasible-and-wavelength-legal m.
    plan = plan_wrht(N, W, phy=OpticalPhyParams())
    assert plan.m == 129
    assert by_m[plan.m][3]
