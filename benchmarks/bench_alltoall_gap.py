"""Analysis bench — the constructive gap on Liang & Shen's ⌈k²/8⌉ bound.

The paper sizes WRHT's final all-to-all step by the wavelength bound of
[13]. That bound equals the per-segment *load* under balanced shortest-path
routing; an actual assignment is a circular-arc coloring, which can need a
few more wavelengths than its load. This bench measures the gap across
representative sizes: load bound vs First-Fit vs DSATUR on k nodes evenly
spread over an N-ring — the data behind EXPERIMENTS.md's constructive-RWA
note, and the justification for the executor's DSATUR fallback.
"""

from repro.collectives.alltoall import build_alltoall_step
from repro.core.wavelengths import alltoall_wavelengths
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.optical.rwa import assign_wavelengths, dsatur_assign
from repro.util.tables import AsciiTable

CASES = [
    # (k participants, N ring size) — even spread
    (4, 32), (8, 64), (8, 8), (12, 48), (16, 16), (16, 128), (24, 96), (32, 32),
]


def _measure():
    rows = []
    for k, n in CASES:
        nodes = [i * (n // k) for i in range(k)]
        step = build_alltoall_step(nodes, 10)
        net = OpticalRingNetwork(
            OpticalSystemConfig(n_nodes=n, n_wavelengths=4096)
        )
        routes = net._route_step(step)
        # Per-(direction, segment) load: the theoretical floor.
        load: dict = {}
        for r in routes:
            for s in r.segments:
                key = (r.direction, s)
                load[key] = load.get(key, 0) + 1
        max_load = max(load.values())
        ff = assign_wavelengths(routes, n, 4096)
        ds = dsatur_assign(routes, n, 4096)
        rows.append(
            (f"k={k} on N={n}", alltoall_wavelengths(k), max_load,
             ff.peak_wavelength, ds.peak_wavelength)
        )
    return rows


def test_alltoall_constructive_gap(once):
    rows = once(_measure)
    table = AsciiTable(
        ["case", "⌈k²/8⌉ (paper)", "max load", "First-Fit λ", "DSATUR λ"]
    )
    for row in rows:
        table.add_row(row)
    print()
    print("Wavelengths for a one-step ring all-to-all (even spread):")
    print(table.render())

    for label, bound, max_load, ff, ds in rows:
        # The paper's number is a load bound: balanced routing attains it.
        assert max_load <= bound + 1, (label, max_load, bound)
        # No coloring can beat the load...
        assert ds >= max_load and ff >= max_load, label
        # ...DSATUR never loses to First-Fit and stays within ~15% of load.
        assert ds <= ff, label
        assert ds <= max_load * 1.15 + 1, (label, ds, max_load)
