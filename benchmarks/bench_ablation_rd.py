"""Ablation — Recursive Doubling variant and ECMP mode (Fig 7 divergence).

EXPERIMENTS.md notes our WRHT-vs-RD reduction (89%) overshoots the paper's
55.51%. This bench decomposes the gap: how much is RD's full-vector payload
(vs Rabenseifner halving-doubling) and how much is ECMP hash-collision
congestion (vs ideal per-host uplinks) on the 1024-host fat-tree.
"""

from repro.collectives.registry import build_schedule
from repro.dnn.workload import workload_by_name
from repro.electrical.config import ElectricalSystemConfig
from repro.electrical.network import ElectricalNetwork
from repro.util.tables import AsciiTable

N_NODES = 1024


def _grid():
    workload = workload_by_name("ResNet50")
    out = {}
    for variant in ("doubling", "halving_doubling"):
        sched = build_schedule(
            "rd", N_NODES, workload.n_params, materialize=False, variant=variant
        )
        for ecmp in ("hash", "ideal"):
            net = ElectricalNetwork(
                ElectricalSystemConfig(n_nodes=N_NODES, ecmp=ecmp)
            )
            result = net.execute(sched, bytes_per_elem=workload.bytes_per_param)
            out[(variant, ecmp)] = (result.total_time, result.max_link_share)
    return out


def test_rd_variant_and_ecmp_ablation(once):
    grid = once(_grid)
    table = AsciiTable(["RD variant", "ECMP", "time (ms)", "max flows/link"])
    for (variant, ecmp), (time, share) in grid.items():
        table.add_row([variant, ecmp, time * 1e3, share])
    print()
    print(f"Recursive Doubling on the {N_NODES}-host fat-tree, ResNet50 gradient:")
    print(table.render())

    # Hash ECMP collides; ideal does not.
    assert grid[("doubling", "hash")][1] > 1
    assert grid[("doubling", "ideal")][1] == 1
    # Both knobs help; halving-doubling is the bigger lever at this size.
    assert grid[("doubling", "ideal")][0] < grid[("doubling", "hash")][0]
    assert grid[("halving_doubling", "hash")][0] < grid[("doubling", "hash")][0]
    best = grid[("halving_doubling", "ideal")][0]
    assert best == min(t for t, _ in grid.values())
