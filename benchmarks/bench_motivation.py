"""Motivation bench — the Sec 1 claim, quantified end to end.

"It has been shown that the communications for All-reduce with a large
number of workers may occupy 50-90% of per-iteration training time in
current traditional electrical networks [35]."

Reproduced with this library's own pieces: per-layer FLOP profiles and a
TITAN-class device model give compute time; the electrical fat-tree prices
E-Ring All-reduce (strict 40 Gbit/s units — the realistic regime for the
claim); global batch is fixed so scaling out shrinks per-worker compute.
Then the same iterations are priced with WRHT on the optical ring, showing
what the paper's scheme buys at the iteration level.
"""

from repro.core.timing import CostModel
from repro.dnn.iteration import IterationModel, comm_backend_from_analytical
from repro.dnn.profile import DeviceModel, profile_model
from repro.optical.config import OpticalSystemConfig
from repro.util.tables import AsciiTable

GLOBAL_BATCH = 1024
NODES = (16, 64, 256, 1024)
# E-Ring on the fat-tree: 40 Gbit/s links, 3 router crossings per step.
ELECTRICAL = CostModel(line_rate=5e9, step_overhead=75e-6)


def _sweep():
    device = DeviceModel()
    rows = {}
    for name in ("ResNet50", "VGG16"):
        profile = profile_model(name)
        optical = OpticalSystemConfig(
            n_nodes=max(NODES), n_wavelengths=64, interpretation="strict"
        ).cost_model()
        per_n = []
        for n in NODES:
            batch = max(1, GLOBAL_BATCH // n)
            e_ring = IterationModel(
                profile, comm_backend_from_analytical("Ring", n, ELECTRICAL), device
            ).no_overlap(batch)
            wrht = IterationModel(
                profile, comm_backend_from_analytical("WRHT", n, optical, w=64), device
            ).no_overlap(batch)
            per_n.append((n, batch, e_ring, wrht))
        rows[name] = per_n
    return rows


def test_motivation_claim(once):
    rows = once(_sweep)
    table = AsciiTable(
        ["model", "N", "batch/worker", "E-Ring comm (%)", "iter (ms)",
         "WRHT comm (%)", "WRHT iter (ms)"]
    )
    for name, per_n in rows.items():
        for n, batch, e_ring, wrht in per_n:
            table.add_row(
                [name, n, batch, e_ring.comm_fraction * 100, e_ring.total * 1e3,
                 wrht.comm_fraction * 100, wrht.total * 1e3]
            )
    print()
    print(f"Per-iteration communication share, global batch {GLOBAL_BATCH} "
          "(strict 40 Gbit/s units):")
    print(table.render())

    for name, per_n in rows.items():
        fractions = [e.comm_fraction for _, _, e, _ in per_n]
        # Fraction grows with scale and reaches the paper's 50-90% band.
        assert fractions == sorted(fractions), name
        assert fractions[-1] > 0.5, name
        # WRHT cuts both the fraction and the iteration time at scale.
        _, _, e_ring, wrht = per_n[-1]
        assert wrht.comm_fraction < e_ring.comm_fraction
        assert wrht.total < e_ring.total


def test_overlap_ablation(once):
    """Bucketed overlap on top of WRHT: how much of the remaining
    communication hides behind backward."""

    def measure():
        device = DeviceModel()
        profile = profile_model("ResNet50")
        optical = OpticalSystemConfig(
            n_nodes=1024, n_wavelengths=64, interpretation="strict"
        ).cost_model()
        model = IterationModel(
            profile, comm_backend_from_analytical("WRHT", 1024, optical, w=64), device
        )
        batch = 8
        return {
            "serial": model.no_overlap(batch),
            "bucket-25MB": model.overlapped(batch, bucket_bytes=25e6),
            "bucket-5MB": model.overlapped(batch, bucket_bytes=5e6),
        }

    results = once(measure)
    table = AsciiTable(["schedule", "comm exposed (ms)", "iteration (ms)"])
    for label, b in results.items():
        table.add_row([label, b.comm_exposed * 1e3, b.total * 1e3])
    print()
    print(table.render())
    assert results["bucket-25MB"].total <= results["serial"].total
