"""Ablation — line-rate interpretation (DESIGN.md §6).

Reruns Figure 6 under both readings of Table 2's "40 Gbps/wavelength".
The calibrated reading (40 GB/s) reproduces the paper's 65.23%/43.81%/
82.22% averages; the strict reading (40 Gbit/s) collapses the WRHT-vs-Ring
advantage to single digits and flips the winner on the large models —
the quantitative argument for the calibration note.
"""

from repro.runner.experiments import run_fig6
from repro.util.tables import AsciiTable


def test_interpretation_ablation(once):
    def both():
        return {
            mode: run_fig6(interpretation=mode)
            for mode in ("calibrated", "strict")
        }

    results = once(both)
    table = AsciiTable(
        ["interpretation", "WRHT vs Ring (%)", "vs H-Ring (%)", "vs BT (%)"]
    )
    for mode, result in results.items():
        table.add_row(
            [mode, result.reduction_vs("Ring"), result.reduction_vs("H-Ring"),
             result.reduction_vs("BT")]
        )
    print()
    print("Figure 6 average reductions under both unit readings "
          "(paper: 65.23 / 43.81 / 82.22):")
    print(table.render())

    calibrated, strict = results["calibrated"], results["strict"]
    assert calibrated.reduction_vs("Ring") > 55
    assert strict.reduction_vs("Ring") < 20
    # Strict units flip the Fig 6 winner for the large models.
    assert strict.cell("VGG16", "WRHT", 1024) > strict.cell("VGG16", "Ring", 1024)
    assert calibrated.cell("VGG16", "WRHT", 1024) < calibrated.cell("VGG16", "Ring", 1024)
    # BT's reduction is unit-invariant (same payload shape as WRHT).
    assert abs(calibrated.reduction_vs("BT") - strict.reduction_vs("BT")) < 1.0
