"""Figure 6 — optical-system comparison across 1024…4096 nodes (w=64).

Paper claims (Sec 5.5): WRHT lowest for every DNN at every scale and nearly
flat in N; Ring rises linearly; H-Ring rises more slowly; BT worst for
BEiT/VGG16 but competitive on ResNet50. Reported average reductions:
WRHT vs Ring 65.23%, vs H-Ring 43.81%, vs BT 82.22%.
"""

from benchmarks.conftest import print_experiment
from repro.runner.experiments import run_fig6

PAPER = [("Ring", "WRHT", 65.23), ("H-Ring", "WRHT", 43.81), ("BT", "WRHT", 82.22)]


def test_fig6_analytical(once):
    result = once(run_fig6, mode="analytical")
    print_experiment(result, PAPER)

    for wl in result.workloads:
        for algo in ("Ring", "H-Ring", "BT"):
            for n in result.x_values:
                assert result.cell(wl, "WRHT", n) < result.cell(wl, algo, n)
        # Ring linear rise, H-Ring slower growth, WRHT near-flat.
        ring = result.series[(wl, "Ring")]
        hring = result.series[(wl, "H-Ring")]
        wrht = result.series[(wl, "WRHT")]
        assert ring[-1] > ring[0]
        assert (hring[-1] / hring[0]) < (ring[-1] / ring[0])
        assert max(wrht) < 1.5 * min(wrht)
    # BT worst on the big models, competitive on ResNet50.
    for n in result.x_values:
        for big in ("BEiT-L", "VGG16"):
            assert result.cell(big, "BT", n) == max(
                result.cell(big, a, n) for a in ("Ring", "H-Ring", "BT", "WRHT")
            )
    assert result.cell("ResNet50", "BT", 1024) < result.cell("ResNet50", "Ring", 1024)

    # Average reductions within the calibrated model's band of the paper.
    assert 55 < result.reduction_vs("Ring") < 80      # paper 65.23
    assert 35 < result.reduction_vs("H-Ring") < 60    # paper 43.81
    assert 75 < result.reduction_vs("BT") < 92        # paper 82.22


def test_fig6_simulated(once):
    result = once(run_fig6, mode="simulated")
    print_experiment(result, PAPER)
    for wl in result.workloads:
        for algo in ("Ring", "H-Ring", "BT"):
            for n in result.x_values:
                assert result.cell(wl, "WRHT", n) < result.cell(wl, algo, n)
    assert 55 < result.reduction_vs("Ring") < 80
