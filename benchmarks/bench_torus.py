"""Extension bench — WRHT on torus/mesh topologies (Sec 6.1).

Step counts for square tori against the 1-D ring WRHT and Ring All-reduce
at the same node counts, plus real substrate pricing: the torus schedules
run on the 2-D optical torus executor (per-row/per-column rings with
dimension-ordered routing and shared-RWA wavelength assignment), the ring
baselines on the 1-D ring executor — the ResNet50 gradient throughout.
The paper only sketches this extension; the bench quantifies it and
verifies every generated schedule numerically.
"""

from repro.collectives.registry import build_schedule
from repro.collectives.verify import verify_allreduce
from repro.core.steps import ring_steps, wrht_steps
from repro.core.torus import build_torus_wrht_schedule, torus_wrht_steps
from repro.dnn.workload import workload_by_name
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.optical.torus import TorusOpticalNetwork
from repro.util.tables import AsciiTable

W = 64
M = 9  # row/column group size


def _measure():
    workload = workload_by_name("ResNet50")
    rows = []
    for side in (4, 8, 16, 32):
        n = side * side
        cfg = OpticalSystemConfig(n_nodes=n, n_wavelengths=W)
        torus_net = TorusOpticalNetwork(cfg, side, side)
        ring_net = OpticalRingNetwork(cfg)

        torus_sched = build_torus_wrht_schedule(
            side, side, workload.n_params, m=M, n_wavelengths=W
        )
        torus_run = torus_net.execute(
            torus_sched, bytes_per_elem=workload.bytes_per_param
        )
        ring_wrht_sched = build_schedule(
            "wrht", n, workload.n_params, n_wavelengths=W, materialize=False
        )
        ring_wrht_run = ring_net.execute(
            ring_wrht_sched, bytes_per_elem=workload.bytes_per_param
        )
        mesh_steps = torus_wrht_steps(side, side, M, W, topology="mesh")
        rows.append(
            (
                f"{side}x{side}", n,
                torus_sched.n_steps, torus_run.total_rounds, mesh_steps,
                ring_wrht_sched.n_steps, ring_steps(n),
                torus_run.total_time * 1e3,
                ring_wrht_run.total_time * 1e3,
            )
        )
        # Verify small-vector instances of both torus variants.
        for topo in ("torus", "mesh"):
            verify_allreduce(
                build_torus_wrht_schedule(
                    side, side, 32, m=M, n_wavelengths=W, topology=topo
                )
            )
    return rows


def test_torus_extension(once):
    rows = once(_measure)
    table = AsciiTable(
        ["grid", "N", "torus θ", "torus rounds", "mesh θ", "ring-WRHT θ",
         "Ring steps", "torus time (ms)", "ring-WRHT time (ms)"]
    )
    for row in rows:
        table.add_row(row)
    print()
    print(f"WRHT across topologies (m={M}, w={W}, ResNet50 gradient, "
          "real substrate pricing):")
    print(table.render())

    for (_, n, torus_steps, torus_rounds, mesh_steps, ring_wrht, ring,
         t_torus, t_ring) in rows:
        # Torus WRHT keeps logarithmic behaviour: orders below Ring.
        assert torus_steps < ring / 8
        # The 1-D ring with full wavelength reuse needs fewer steps than the
        # row/column decomposition (it can use much larger groups).
        assert ring_wrht <= torus_steps
        assert mesh_steps >= torus_steps
        # With w=64 every torus step fits its wavelength budget.
        assert torus_rounds == torus_steps
        # Both substrates priced: the step gap translates into time.
        assert t_ring <= t_torus
